// Span-based tracing that serializes to Chrome trace_event JSON.
//
// A trace session buffers "complete" events (ph = "X": name, start, duration,
// thread id) and writes them as {"traceEvents": [...]} on flush — the format
// chrome://tracing and https://ui.perfetto.dev load directly, which turns a
// 10k-chip aging series into a per-thread flame chart.
//
// Sessions start either from the environment (AROPUF_TRACE=out.json, written
// automatically at process exit) or programmatically with start_trace().
// When no session is active a TraceScope costs one relaxed atomic load; when
// active, ending a span appends to a mutex-guarded buffer — spans here are
// coarse (experiment stages, parallel_for chunks), never per-RO.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>

#include "common/json.hpp"

namespace aropuf::telemetry {

/// One relaxed atomic load; instrumentation guards on this before building
/// span names or args.
[[nodiscard]] bool trace_enabled() noexcept;

/// Starts buffering spans; they are written to `path` by flush_trace() (or at
/// process exit).  Restarting an active session discards buffered spans.
void start_trace(const std::string& path);

/// Starts a buffer-only session: spans are collected for
/// drain_trace_events() but never written to a file — fleet workers ship
/// them over the wire inside METRICS frames instead.  flush_trace() on a
/// buffer-only session just ends it (nothing is written).
void start_trace_buffered();

/// Writes the buffered spans as Chrome trace JSON and ends the session.
/// Returns false (and logs at error level) when the file cannot be written.
/// No-op returning true when no session is active or the session is
/// buffer-only (started with start_trace_buffered()).
bool flush_trace();

/// Number of spans currently buffered (tests and sanity checks).
[[nodiscard]] std::size_t trace_event_count() noexcept;

/// Sets the Chrome-trace process label emitted as the process_name metadata
/// event ("coordinator", "worker[3] host:pid", ...).  Default: "aropuf".
void set_trace_process_label(const std::string& label);

/// Labels the calling thread in trace output (thread_name metadata event).
/// Unlabeled threads render as "thread <tid>".
void set_trace_thread_label(const std::string& label);

/// Moves the buffered spans out as Chrome "X" event objects: name/cat/ph/
/// ts/dur (µs on this process's steady-clock base)/tid (+ args, + "tname"
/// when the thread is labeled).  No pid — the consumer assigns process
/// identity when merging timelines across processes.  The session stays
/// active; returns an empty array when no session is active.
[[nodiscard]] JsonValue::Array drain_trace_events();

/// Wall-clock milliseconds at this process's steady-clock zero — the anchor
/// a consumer needs to rebase drained event timestamps onto wall time
/// (event unix µs = trace_epoch_unix_ms()*1000 + ts).
[[nodiscard]] double trace_epoch_unix_ms();

/// Stable small integer identifying the calling thread in trace output
/// (assigned on first use; the main thread is usually 0).
[[nodiscard]] int trace_thread_id() noexcept;

/// Microseconds on the steady clock since process start — the trace time
/// base, also used by the engine's queue-wait instrumentation.
[[nodiscard]] std::uint64_t steady_now_us() noexcept;

using TraceArg = std::pair<std::string_view, JsonValue>;
using TraceCounterValue = std::pair<std::string_view, double>;

/// Appends a Chrome counter ("C"-phase) event at the current timestamp;
/// each (series, value) pair renders as a stacked counter track in
/// chrome://tracing / Perfetto.  The ResourceSampler emits RSS/CPU/thread
/// timelines through this.  No-op when tracing is disabled.
void trace_counter(std::string_view name, std::initializer_list<TraceCounterValue> values);

/// Appends a complete ("X") span covering [start_us, now] whose args are
/// only known at end of scope — profiling scopes attach counter deltas
/// this way (TraceScope copies args at construction, too early for them).
/// No-op when tracing is disabled.
void trace_complete(std::string_view name, std::string_view category, std::uint64_t start_us,
                    JsonValue::Object args);

/// RAII span: records a complete event covering construction → destruction.
/// Construction is a no-op (no string copies) when tracing is disabled.
class TraceScope {
 public:
  explicit TraceScope(std::string_view name, std::string_view category = "aropuf");
  TraceScope(std::string_view name, std::string_view category,
             std::initializer_list<TraceArg> args);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  bool active_ = false;
  std::uint64_t start_us_ = 0;
  std::string name_;
  std::string category_;
  JsonValue::Object args_;
};

}  // namespace aropuf::telemetry
