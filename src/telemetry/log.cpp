#include "telemetry/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>

#include "common/cli.hpp"

namespace aropuf::telemetry {

namespace {

/// Milliseconds since the first log-state touch; monotonic, so lines order
/// consistently even if the wall clock steps.
double elapsed_ms() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double, std::milli>(clock::now() - start).count();
}

void stderr_sink(std::string_view line) {
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fputc('\n', stderr);
}

LogFormat parse_log_format(const char* text, LogFormat fallback) noexcept {
  if (text == nullptr) return fallback;
  const std::string_view sv(text);
  if (sv == "json") return LogFormat::kJson;
  if (sv == "text") return LogFormat::kText;
  return fallback;
}

struct LogState {
  std::atomic<int> level;
  std::atomic<int> format;
  std::atomic<LogSink> sink;
  std::mutex emit_mutex;

  LogState()
      : level(static_cast<int>(level_from_environment())),
        format(static_cast<int>(format_from_environment())),
        sink(&stderr_sink) {
    elapsed_ms();  // pin the epoch at first touch
  }

  static LogLevel level_from_environment() noexcept {
    const char* env = cli::env_value("AROPUF_LOG");
    return env ? parse_log_level(env, LogLevel::kWarn) : LogLevel::kWarn;
  }

  static LogFormat format_from_environment() noexcept {
    return parse_log_format(cli::env_value("AROPUF_LOG_FORMAT"), LogFormat::kText);
  }
};

LogState& state() {
  static LogState s;
  return s;
}

}  // namespace

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "unknown";
}

LogLevel parse_log_level(std::string_view text, LogLevel fallback) noexcept {
  if (text == "trace") return LogLevel::kTrace;
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn" || text == "warning") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off" || text == "none") return LogLevel::kOff;
  return fallback;
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(state().level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  state().level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogFormat log_format() noexcept {
  return static_cast<LogFormat>(state().format.load(std::memory_order_relaxed));
}

void set_log_format(LogFormat format) noexcept {
  state().format.store(static_cast<int>(format), std::memory_order_relaxed);
}

void reset_log_from_environment() {
  set_log_level(LogState::level_from_environment());
  set_log_format(LogState::format_from_environment());
}

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= state().level.load(std::memory_order_relaxed) &&
         level != LogLevel::kOff;
}

void set_log_sink(LogSink sink) noexcept {
  state().sink.store(sink != nullptr ? sink : &stderr_sink, std::memory_order_relaxed);
}

std::string format_log_line(LogFormat format, LogLevel level, std::string_view component,
                            std::string_view message, std::initializer_list<LogField> fields) {
  if (format == LogFormat::kJson) {
    JsonValue::Object record;
    record["elapsed_ms"] = JsonValue(elapsed_ms());
    record["level"] = JsonValue(to_string(level));
    record["component"] = JsonValue(std::string(component));
    record["message"] = JsonValue(std::string(message));
    if (fields.size() > 0) {
      JsonValue::Object fobj;
      for (const auto& [key, value] : fields) fobj[std::string(key)] = value;
      record["fields"] = JsonValue(std::move(fobj));
    }
    return JsonValue(std::move(record)).dump();
  }
  std::string line;
  line.reserve(64 + message.size());
  char head[48];
  std::snprintf(head, sizeof(head), "%12.3f %-5s ", elapsed_ms(), to_string(level));
  line += head;
  line += '[';
  line += component;
  line += "] ";
  line += message;
  for (const auto& [key, value] : fields) {
    line += ' ';
    line += key;
    line += '=';
    // dump() renders numbers bare and strings JSON-quoted/escaped, which is
    // exactly the key=value convention we want.
    line += value.dump();
  }
  return line;
}

void log_message(LogLevel level, std::string_view component, std::string_view message,
                 std::initializer_list<LogField> fields) {
  if (!log_enabled(level)) return;
  const std::string line = format_log_line(log_format(), level, component, message, fields);
  LogState& s = state();
  const LogSink sink = s.sink.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(s.emit_mutex);
  sink(line);
}

}  // namespace aropuf::telemetry
