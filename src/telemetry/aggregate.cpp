#include "telemetry/aggregate.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/check.hpp"

#include "common/statistics.hpp"
#include "telemetry/binfmt.hpp"
#include "telemetry/log.hpp"
#include "telemetry/manifest.hpp"

namespace aropuf::telemetry {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw std::runtime_error(path + ": " + why);
}

std::int64_t int_field(const JsonValue& obj, const std::string& key, const std::string& path) {
  if (!obj.contains(key) || !obj.at(key).is_number()) {
    fail(path, "missing or non-numeric field '" + key + "'");
  }
  return static_cast<std::int64_t>(obj.at(key).as_number());
}

/// Validates the parts of a shard manifest the merger depends on.
ShardManifest validate_shard(JsonValue doc, const std::string& path) {
  if (!doc.is_object()) fail(path, "top level must be a JSON object");
  if (doc.string_or("schema", "") != kManifestSchema) {
    fail(path, "not a run manifest (schema != '" + std::string(kManifestSchema) + "')");
  }
  if (int_field(doc, "schema_version", path) != kManifestSchemaVersion) {
    fail(path, "unsupported manifest schema_version");
  }
  if (doc.string_or("run", "").empty()) fail(path, "missing run name");
  if (!doc.contains("shard") || !doc.at("shard").is_object()) {
    fail(path, "missing 'shard' descriptor (not written by a shard worker?)");
  }
  const JsonValue& shard = doc.at("shard");
  ShardManifest out;
  out.path = path;
  out.shard_index = static_cast<int>(int_field(shard, "index", path));
  out.shard_count = static_cast<int>(int_field(shard, "count", path));
  out.chip_lo = int_field(shard, "chip_lo", path);
  out.chip_hi = int_field(shard, "chip_hi", path);
  if (out.shard_index < 0 || out.shard_count < 1 || out.shard_index >= out.shard_count) {
    fail(path, "shard index/count out of range");
  }
  if (out.chip_lo < 0 || out.chip_hi < out.chip_lo) fail(path, "invalid shard chip range");
  out.doc = std::move(doc);
  return out;
}

std::string compact(const JsonValue& v) { return v.dump(); }

/// Records a conflict when shards disagree on `field` (extracted by `get`).
template <typename Get>
void detect_conflict(const std::vector<ShardManifest>& shards, const std::string& field,
                     std::vector<AggregateConflict>& conflicts, const Get& get) {
  AggregateConflict c;
  c.field = field;
  std::set<std::string> distinct;
  for (const ShardManifest& s : shards) {
    const std::string value = get(s);
    distinct.insert(value);
    c.values[s.shard_index] = value;
  }
  if (distinct.size() > 1) conflicts.push_back(std::move(c));
}

JsonValue conflicts_to_json(const std::vector<AggregateConflict>& conflicts) {
  JsonValue::Array arr;
  for (const AggregateConflict& c : conflicts) {
    JsonValue::Object obj;
    obj["field"] = JsonValue(c.field);
    JsonValue::Object values;
    for (const auto& [shard, value] : c.values) values[std::to_string(shard)] = JsonValue(value);
    obj["values"] = JsonValue(std::move(values));
    arr.emplace_back(std::move(obj));
  }
  return JsonValue(std::move(arr));
}

/// Sums stage wall time in one shard manifest (shard health / ETA figure).
double shard_wall_ms(const JsonValue& doc) {
  double total = 0.0;
  if (!doc.contains("stages") || !doc.at("stages").is_array()) return total;
  for (const JsonValue& stage : doc.at("stages").as_array()) {
    if (stage.is_object()) total += stage.number_or("wall_ms", 0.0);
  }
  return total;
}

JsonValue merge_stages(const std::vector<ShardManifest>& shards) {
  // std::map keys the rollup by stage name: canonical order in the output.
  struct Rollup {
    std::size_t count = 0;
    double wall_sum = 0.0;
    double wall_max = 0.0;
    double cpu_sum = 0.0;
  };
  std::map<std::string, Rollup> rollups;
  for (const ShardManifest& s : shards) {
    if (!s.doc.contains("stages") || !s.doc.at("stages").is_array()) continue;
    for (const JsonValue& stage : s.doc.at("stages").as_array()) {
      if (!stage.is_object()) continue;
      Rollup& r = rollups[stage.string_or("name", "?")];
      const double wall = stage.number_or("wall_ms", 0.0);
      ++r.count;
      r.wall_sum += wall;
      r.wall_max = std::max(r.wall_max, wall);
      r.cpu_sum += stage.number_or("cpu_ms", 0.0);
    }
  }
  JsonValue::Array out;
  for (const auto& [name, r] : rollups) {
    JsonValue::Object obj;
    obj["name"] = JsonValue(name);
    obj["count"] = JsonValue(static_cast<std::uint64_t>(r.count));
    obj["wall_ms_sum"] = JsonValue(r.wall_sum);
    obj["wall_ms_max"] = JsonValue(r.wall_max);
    obj["cpu_ms_sum"] = JsonValue(r.cpu_sum);
    out.emplace_back(std::move(obj));
  }
  return JsonValue(std::move(out));
}

/// Folds per-shard "profile" sections (profiling layer, DESIGN.md §12):
/// modes unify (all equal → that mode, else "mixed"), peak RSS takes the
/// max, raw counters sum with IPC/cache-miss-rate re-derived from the sums,
/// and distinct fallback reasons are collected so a downgraded worker is
/// visible in the merged document.  Shards predating the profile section
/// are skipped; with none present the merged mode is "off".
JsonValue merge_profiles(const std::vector<ShardManifest>& shards) {
  JsonValue::Object out;
  std::string mode;
  bool mixed = false;
  double peak_rss_kib = 0.0;
  std::map<std::string, double> counter_sums;
  bool have_counters = false;
  std::vector<std::string> reasons;
  JsonValue::Object per_shard;
  for (const ShardManifest& s : shards) {
    if (!s.doc.contains("profile") || !s.doc.at("profile").is_object()) continue;
    const JsonValue& p = s.doc.at("profile");
    per_shard[std::to_string(s.shard_index)] = p;
    const std::string shard_mode = p.string_or("mode", "off");
    if (mode.empty()) {
      mode = shard_mode;
    } else if (mode != shard_mode) {
      mixed = true;
    }
    peak_rss_kib = std::max(peak_rss_kib, p.number_or("peak_rss_kib", 0.0));
    const std::string reason = p.string_or("fallback_reason", "");
    if (!reason.empty() && std::find(reasons.begin(), reasons.end(), reason) == reasons.end()) {
      reasons.push_back(reason);
    }
    if (p.contains("counters") && p.at("counters").is_object()) {
      for (const auto& [name, v] : p.at("counters").as_object()) {
        // Raw tallies sum across shards; the derived ratios (ipc,
        // cache_miss_rate, ghz) are recomputed from the sums below.
        if (v.is_number() && name != "ipc" && name != "cache_miss_rate" && name != "ghz") {
          counter_sums[name] += v.as_number();
          have_counters = true;
        }
      }
    }
  }
  out["mode"] = JsonValue(mixed ? "mixed" : (mode.empty() ? "off" : mode));
  {
    JsonValue::Array arr;
    for (const std::string& r : reasons) arr.emplace_back(r);
    out["fallback_reasons"] = JsonValue(std::move(arr));
  }
  out["peak_rss_kib"] = JsonValue(peak_rss_kib);
  if (have_counters) {
    JsonValue::Object counters;
    for (const auto& [name, v] : counter_sums) counters[name] = JsonValue(v);
    const double cycles = counter_sums.count("cycles") ? counter_sums.at("cycles") : 0.0;
    if (cycles > 0.0 && counter_sums.count("instructions")) {
      counters["ipc"] = JsonValue(counter_sums.at("instructions") / cycles);
    }
    if (counter_sums.count("cache_references") && counter_sums.count("cache_misses") &&
        counter_sums.at("cache_references") > 0.0) {
      counters["cache_miss_rate"] =
          JsonValue(counter_sums.at("cache_misses") / counter_sums.at("cache_references"));
    }
    if (cycles > 0.0 && counter_sums.count("task_clock_ms") &&
        counter_sums.at("task_clock_ms") > 0.0) {
      counters["ghz"] = JsonValue(cycles / (counter_sums.at("task_clock_ms") * 1e6));
    }
    out["counters"] = JsonValue(std::move(counters));
  }
  out["per_shard"] = JsonValue(std::move(per_shard));
  return JsonValue(std::move(out));
}

const JsonValue* metrics_section(const ShardManifest& s, const char* kind) {
  if (!s.doc.contains("metrics") || !s.doc.at("metrics").is_object()) return nullptr;
  const JsonValue& metrics = s.doc.at("metrics");
  if (!metrics.contains(kind) || !metrics.at(kind).is_object()) return nullptr;
  return &metrics.at(kind);
}

JsonValue merge_counters(const std::vector<ShardManifest>& shards) {
  std::map<std::string, double> sums;
  for (const ShardManifest& s : shards) {
    if (const JsonValue* counters = metrics_section(s, "counters")) {
      for (const auto& [name, v] : counters->as_object()) {
        if (v.is_number()) sums[name] += v.as_number();
      }
    }
  }
  JsonValue::Object out;
  for (const auto& [name, sum] : sums) out[name] = JsonValue(sum);
  return JsonValue(std::move(out));
}

JsonValue merge_gauges(const std::vector<ShardManifest>& shards) {
  struct GaugeMerge {
    std::map<int, double> per_shard;
  };
  std::map<std::string, GaugeMerge> merges;
  for (const ShardManifest& s : shards) {
    if (const JsonValue* gauges = metrics_section(s, "gauges")) {
      for (const auto& [name, v] : gauges->as_object()) {
        if (v.is_number()) merges[name].per_shard[s.shard_index] = v.as_number();
      }
    }
  }
  JsonValue::Object out;
  for (const auto& [name, m] : merges) {
    const GaugePolicy policy = gauge_merge_policy(name);
    double resolved = 0.0;
    if (policy == GaugePolicy::kLast) {
      resolved = m.per_shard.rbegin()->second;  // highest shard index present
    } else {
      resolved = m.per_shard.begin()->second;
      for (const auto& [shard, v] : m.per_shard) resolved = std::max(resolved, v);
    }
    JsonValue::Object obj;
    obj["policy"] = JsonValue(policy == GaugePolicy::kLast ? "last" : "max");
    obj["value"] = JsonValue(resolved);
    JsonValue::Object per_shard;
    for (const auto& [shard, v] : m.per_shard) per_shard[std::to_string(shard)] = JsonValue(v);
    obj["per_shard"] = JsonValue(std::move(per_shard));
    out[name] = JsonValue(std::move(obj));
  }
  return JsonValue(std::move(out));
}

/// Rebuilds the RunningStats a histogram snapshot serialized.  Prefers the
/// exact m2 moment; falls back to stddev^2 * (n-1) for older manifests.
RunningStats stats_from_snapshot(const JsonValue& h) {
  const auto n = static_cast<std::size_t>(h.number_or("count", 0.0));
  double m2 = h.number_or("m2", -1.0);
  if (m2 < 0.0) {
    const double sd = h.number_or("stddev", 0.0);
    m2 = n > 1 ? sd * sd * static_cast<double>(n - 1) : 0.0;
  }
  return RunningStats::from_moments(n, h.number_or("mean", 0.0), m2, h.number_or("min", 0.0),
                                    h.number_or("max", 0.0));
}

JsonValue histogram_snapshot_json(const RunningStats& stats, double lo, double hi,
                                  const std::vector<double>& bins) {
  JsonValue::Object obj;
  obj["count"] = JsonValue(static_cast<std::uint64_t>(stats.count()));
  obj["mean"] = JsonValue(stats.mean());
  obj["stddev"] = JsonValue(stats.stddev());
  obj["m2"] = JsonValue(stats.m2());
  obj["min"] = JsonValue(stats.count() > 0 ? stats.min() : 0.0);
  obj["max"] = JsonValue(stats.count() > 0 ? stats.max() : 0.0);
  obj["lo"] = JsonValue(lo);
  obj["hi"] = JsonValue(hi);
  JsonValue::Array out_bins;
  out_bins.reserve(bins.size());
  for (const double b : bins) out_bins.emplace_back(b);
  obj["bins"] = JsonValue(std::move(out_bins));
  return JsonValue(std::move(obj));
}

JsonValue merge_histograms(const std::vector<ShardManifest>& shards,
                           std::vector<AggregateConflict>& conflicts) {
  struct HistMerge {
    bool first = true;
    bool shape_conflict = false;
    double lo = 0.0, hi = 0.0;
    std::size_t bin_count = 0;
    RunningStats stats;
    std::vector<double> bins;
    std::map<int, std::string> shapes;
  };
  std::map<std::string, HistMerge> merges;
  for (const ShardManifest& s : shards) {
    const JsonValue* histograms = metrics_section(s, "histograms");
    if (histograms == nullptr) continue;
    for (const auto& [name, h] : histograms->as_object()) {
      if (!h.is_object() || !h.contains("bins") || !h.at("bins").is_array()) continue;
      HistMerge& m = merges[name];
      const double lo = h.number_or("lo", 0.0);
      const double hi = h.number_or("hi", 0.0);
      const JsonValue::Array& bins = h.at("bins").as_array();
      std::ostringstream shape;
      shape << "lo=" << lo << ",hi=" << hi << ",bins=" << bins.size();
      m.shapes[s.shard_index] = shape.str();
      if (m.first) {
        m.first = false;
        m.lo = lo;
        m.hi = hi;
        m.bin_count = bins.size();
        m.bins.assign(bins.size(), 0.0);
      } else if (lo != m.lo || hi != m.hi || bins.size() != m.bin_count) {
        m.shape_conflict = true;
        continue;
      }
      m.stats.merge(stats_from_snapshot(h));
      for (std::size_t b = 0; b < bins.size(); ++b) {
        if (bins[b].is_number()) m.bins[b] += bins[b].as_number();
      }
    }
  }
  JsonValue::Object out;
  for (auto& [name, m] : merges) {
    if (m.shape_conflict) {
      AggregateConflict c;
      c.field = "metrics.histograms." + name;
      c.values = std::move(m.shapes);
      conflicts.push_back(std::move(c));
      continue;  // unmergeable shape: reported, not silently mangled
    }
    out[name] = histogram_snapshot_json(m.stats, m.lo, m.hi, m.bins);
  }
  return JsonValue(std::move(out));
}

const JsonValue* results_section(const ShardManifest& s, const char* kind) {
  if (!s.doc.contains("results") || !s.doc.at("results").is_object()) return nullptr;
  const JsonValue& results = s.doc.at("results");
  if (!results.contains(kind) || !results.at(kind).is_object()) return nullptr;
  return &results.at(kind);
}

/// Pulls every embedded sample-series value array out of a JSON shard
/// manifest into owned chunks, validating structure as it goes.  Throws (via
/// fail) on malformed series; mutates nothing on failure paths that matter —
/// the caller only commits the chunks after all validation passes.
std::vector<SeriesChunk> extract_series_chunks(const ShardManifest& shard) {
  std::vector<SeriesChunk> chunks;
  const JsonValue* samples = results_section(shard, "samples");
  if (samples == nullptr) return chunks;
  for (const auto& [name, series] : samples->as_object()) {
    if (!series.is_object() || !series.contains("values") || !series.at("values").is_array()) {
      fail(shard.path, "sample series '" + name + "' malformed");
    }
    SeriesChunk p;
    p.name = name;
    p.offset = static_cast<std::int64_t>(series.number_or("offset", 0.0));
    p.total = static_cast<std::int64_t>(series.number_or("total", 0.0));
    p.hist_lo = series.number_or("hist_lo", 0.0);
    p.hist_hi = series.number_or("hist_hi", 1.0);
    p.hist_bins = static_cast<std::int64_t>(series.number_or("hist_bins", 50.0));
    const JsonValue::Array& values = series.at("values").as_array();
    p.values.reserve(values.size());
    for (const JsonValue& v : values) {
      if (!v.is_number()) fail(shard.path, "sample series '" + name + "' malformed");
      p.values.push_back(v.as_number());
    }
    chunks.push_back(std::move(p));
  }
  return chunks;
}

/// Checks that per-shard [lo, hi) ranges exactly tile [0, total).
void require_exact_tiling(const std::string& what,
                          std::vector<std::pair<std::int64_t, std::int64_t>> ranges,
                          std::int64_t total) {
  std::sort(ranges.begin(), ranges.end());
  std::int64_t cursor = 0;
  for (const auto& [lo, hi] : ranges) {
    if (lo != cursor) {
      throw std::runtime_error(what + ": shard ranges leave a gap or overlap at index " +
                               std::to_string(cursor) + " (next range starts at " +
                               std::to_string(lo) + ")");
    }
    cursor = hi;
  }
  if (cursor != total) {
    throw std::runtime_error(what + ": shard ranges cover [0, " + std::to_string(cursor) +
                             ") but the declared total is " + std::to_string(total));
  }
}

/// Merges integer tallies: all moments are exact integer sums, so the merge
/// is order-independent and bit-identical to a single-process tally.
JsonValue merge_tallies(const std::vector<ShardManifest>& shards) {
  struct TallyMerge {
    bool first = true;
    bool have_minmax = false;
    std::int64_t total = 0;
    double denom = 1.0;
    double hist_lo = 0.0, hist_hi = 1.0;
    std::size_t hist_bins = 0;
    double count = 0.0, sum = 0.0, sum_sq = 0.0;
    double min = 0.0, max = 0.0;
    std::vector<double> bins;
    std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
  };
  std::map<std::string, TallyMerge> merges;
  for (const ShardManifest& s : shards) {
    const JsonValue* tallies = results_section(s, "tallies");
    if (tallies == nullptr) continue;
    for (const auto& [name, t] : tallies->as_object()) {
      if (!t.is_object() || !t.contains("bins") || !t.at("bins").is_array()) {
        throw std::runtime_error(s.path + ": tally '" + name + "' malformed");
      }
      TallyMerge& m = merges[name];
      const JsonValue::Array& bins = t.at("bins").as_array();
      if (m.first) {
        m.first = false;
        m.total = static_cast<std::int64_t>(t.number_or("total", 0.0));
        m.denom = t.number_or("denom", 1.0);
        m.hist_lo = t.number_or("hist_lo", 0.0);
        m.hist_hi = t.number_or("hist_hi", 1.0);
        m.hist_bins = bins.size();
        m.bins.assign(bins.size(), 0.0);
      } else if (static_cast<std::int64_t>(t.number_or("total", 0.0)) != m.total ||
                 t.number_or("denom", 1.0) != m.denom || bins.size() != m.hist_bins) {
        throw std::runtime_error(s.path + ": tally '" + name + "' disagrees on shape");
      }
      // An empty piece (a shard whose pair range is empty) carries no
      // min/max information; letting its zeros in would corrupt the merge.
      if (t.number_or("count", 0.0) > 0.0) {
        if (!m.have_minmax) {
          m.have_minmax = true;
          m.min = t.number_or("min", 0.0);
          m.max = t.number_or("max", 0.0);
        } else {
          m.min = std::min(m.min, t.number_or("min", 0.0));
          m.max = std::max(m.max, t.number_or("max", 0.0));
        }
      }
      m.count += t.number_or("count", 0.0);
      m.sum += t.number_or("sum", 0.0);
      m.sum_sq += t.number_or("sum_sq", 0.0);
      m.ranges.emplace_back(static_cast<std::int64_t>(t.number_or("offset", 0.0)),
                            static_cast<std::int64_t>(t.number_or("offset", 0.0)) +
                                static_cast<std::int64_t>(t.number_or("count", 0.0)));
      for (std::size_t b = 0; b < bins.size(); ++b) {
        if (bins[b].is_number()) m.bins[b] += bins[b].as_number();
      }
    }
  }
  JsonValue::Object out;
  for (auto& [name, m] : merges) {
    require_exact_tiling("tally '" + name + "'", std::move(m.ranges), m.total);
    // Derived statistics in denominator units.  All inputs are exact integer
    // sums, so these doubles are identical for any shard decomposition.
    const double n = m.count;
    const double mean = n > 0 ? (m.sum / n) / m.denom : 0.0;
    double variance = 0.0;
    if (n > 1.5) {
      const double sum_frac = m.sum / m.denom;
      const double sum_sq_frac = m.sum_sq / (m.denom * m.denom);
      variance = std::max(0.0, (sum_sq_frac - sum_frac * sum_frac / n) / (n - 1.0));
    }
    JsonValue::Object obj;
    obj["count"] = JsonValue(m.count);
    obj["sum"] = JsonValue(m.sum);
    obj["sum_sq"] = JsonValue(m.sum_sq);
    obj["denom"] = JsonValue(m.denom);
    obj["mean"] = JsonValue(mean);
    obj["stddev"] = JsonValue(std::sqrt(variance));
    obj["min"] = JsonValue(n > 0 ? m.min / m.denom : 0.0);
    obj["max"] = JsonValue(n > 0 ? m.max / m.denom : 0.0);
    JsonValue::Object hobj;
    hobj["lo"] = JsonValue(m.hist_lo);
    hobj["hi"] = JsonValue(m.hist_hi);
    JsonValue::Array bins;
    for (const double b : m.bins) bins.emplace_back(b);
    hobj["bins"] = JsonValue(std::move(bins));
    obj["histogram"] = JsonValue(std::move(hobj));
    out[name] = JsonValue(std::move(obj));
  }
  return JsonValue(std::move(out));
}

}  // namespace

GaugePolicy gauge_merge_policy(const std::string& name) {
  // ".last" names are explicit end-of-run facts (highest shard index wins);
  // everything else resolves to the max across shards.  Documented on Gauge.
  const std::string suffix = ".last";
  if (name.size() >= suffix.size() &&
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
    return GaugePolicy::kLast;
  }
  return GaugePolicy::kMax;
}

ShardManifest load_shard_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) fail(path, "cannot open file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) fail(path, "read error");
  JsonValue doc;
  try {
    doc = JsonValue::parse(buffer.str());
  } catch (const std::exception& e) {
    fail(path, std::string("malformed or truncated manifest: ") + e.what());
  }
  return validate_shard(std::move(doc), path);
}

ShardManifest wrap_shard_manifest(JsonValue doc, const std::string& path) {
  return validate_shard(std::move(doc), path);
}

DecodedShard decode_shard_input(std::string bytes, const std::string& origin) {
  DecodedShard out;
  if (looks_binary(bytes)) {
    BinaryManifestReader reader = [&] {
      try {
        return BinaryManifestReader::parse(std::move(bytes));
      } catch (const BinfmtError& e) {
        throw BinfmtError(e.code(), origin + ": " + e.what());
      }
    }();
    out.manifest = validate_shard(reader.metadata(), origin);
    out.chunks.reserve(reader.series_count());
    for (std::size_t i = 0; i < reader.series_count(); ++i) {
      const SeriesView& view = reader.series(i);
      SeriesChunk chunk;
      chunk.name = std::string(view.name);
      chunk.offset = static_cast<std::int64_t>(view.offset);
      chunk.total = static_cast<std::int64_t>(view.total);
      chunk.hist_lo = view.hist_lo;
      chunk.hist_hi = view.hist_hi;
      chunk.hist_bins = static_cast<std::int64_t>(view.hist_bins);
      chunk.values = view.to_vector();
      out.chunks.push_back(std::move(chunk));
    }
    return out;
  }

  JsonValue doc;
  try {
    doc = JsonValue::parse(bytes);
  } catch (const std::exception& e) {
    fail(origin, std::string("malformed or truncated manifest: ") + e.what());
  }
  out.manifest = validate_shard(std::move(doc), origin);
  out.chunks = extract_series_chunks(out.manifest);
  return out;
}

DecodedShard load_shard_input(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) fail(path, "cannot open file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) fail(path, "read error");
  return decode_shard_input(buffer.str(), path);
}

bool shard_manifest_is_valid(const std::string& path, const std::string& expect_run,
                             int expect_index, int expect_count, std::string* why) {
  try {
    const ShardManifest shard = load_shard_input(path).manifest;
    if (shard.doc.string_or("run", "") != expect_run) {
      if (why != nullptr) *why = "run name mismatch";
      return false;
    }
    if (shard.shard_index != expect_index || shard.shard_count != expect_count) {
      if (why != nullptr) *why = "shard coordinates mismatch";
      return false;
    }
    return true;
  } catch (const std::exception& e) {
    if (why != nullptr) *why = e.what();
    return false;
  }
}

/// Builder state.  `shards` holds every folded manifest with its raw sample
/// values stripped (the metadata-only residue the finalize-time merges need);
/// `series` holds the live per-series folds.
struct AggregateBuilder::Impl {
  /// Incremental reduction of one sample series.  `cursor` is the next global
  /// chip index to reduce; `pending` is the out-of-order window keyed by
  /// piece offset.  A multimap so a duplicate offset (an overlap bug in the
  /// inputs) is parked rather than silently overwritten — finalize() then
  /// reports it through the same tiling check the batch path used.
  struct SeriesFold {
    std::int64_t total = 0;
    double hist_lo = 0.0, hist_hi = 1.0;
    std::int64_t hist_bins = 0;
    std::int64_t cursor = 0;
    RunningStats stats;
    std::optional<Histogram> hist;
    std::multimap<std::int64_t, std::vector<double>> pending;
    std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
    std::vector<double> kept;  ///< populated under RawSeriesPolicy::kKeep only
  };

  RawSeriesPolicy policy = RawSeriesPolicy::kKeep;
  bool finalized = false;
  std::set<int> seen;
  std::vector<ShardManifest> shards;
  std::map<std::string, SeriesFold> series;
  std::size_t buffered = 0;
  std::size_t peak_buffered = 0;
  std::size_t reduced = 0;
};

AggregateBuilder::AggregateBuilder(RawSeriesPolicy policy) : impl_(std::make_unique<Impl>()) {
  impl_->policy = policy;
}
AggregateBuilder::~AggregateBuilder() = default;
AggregateBuilder::AggregateBuilder(AggregateBuilder&&) noexcept = default;
AggregateBuilder& AggregateBuilder::operator=(AggregateBuilder&&) noexcept = default;

RawSeriesPolicy AggregateBuilder::policy() const { return impl_->policy; }
int AggregateBuilder::shards_added() const { return static_cast<int>(impl_->shards.size()); }
int AggregateBuilder::expected_shards() const {
  return impl_->shards.empty() ? 0 : impl_->shards.front().shard_count;
}
std::size_t AggregateBuilder::buffered_values() const { return impl_->buffered; }
std::size_t AggregateBuilder::peak_buffered_values() const { return impl_->peak_buffered; }
std::size_t AggregateBuilder::reduced_values() const { return impl_->reduced; }

void AggregateBuilder::add(ShardManifest&& shard) {
  // JSON transport: pull the embedded value arrays out of the document into
  // chunks, then run the format-agnostic fold.  Extraction validates
  // structure and touches no builder state, so a throw keeps prior folds
  // intact (the transactional contract).
  DecodedShard input;
  input.chunks = extract_series_chunks(shard);
  input.manifest = std::move(shard);
  add(std::move(input));
}

void AggregateBuilder::add(DecodedShard&& input) {
  Impl& im = *impl_;
  ShardManifest& shard = input.manifest;
  if (im.finalized) throw std::logic_error("AggregateBuilder: add() after finalize()");

  // ---- validation phase: no builder state is touched until it all passes,
  // so a throw here leaves every prior fold intact. ----
  if (!im.shards.empty() && shard.shard_count != im.shards.front().shard_count) {
    fail(shard.path, "shard count disagrees with the other manifests");
  }
  if (im.seen.count(shard.shard_index) != 0) {
    fail(shard.path, "duplicate shard index " + std::to_string(shard.shard_index));
  }
  for (const SeriesChunk& p : input.chunks) {
    const auto it = im.series.find(p.name);
    if (it == im.series.end()) continue;
    const Impl::SeriesFold& f = it->second;
    if (p.total != f.total) {
      fail(shard.path, "sample series '" + p.name + "' disagrees on total sample count");
    }
    if (p.hist_lo != f.hist_lo || p.hist_hi != f.hist_hi || p.hist_bins != f.hist_bins) {
      fail(shard.path, "sample series '" + p.name + "' disagrees on histogram shape");
    }
  }
  // Tallies merge at finalize() from the retained docs; reject structural
  // junk here so a malformed shard never enters the fold at all.
  if (const JsonValue* tallies = results_section(shard, "tallies")) {
    for (const auto& [name, t] : tallies->as_object()) {
      if (!t.is_object() || !t.contains("bins") || !t.at("bins").is_array()) {
        fail(shard.path, "tally '" + name + "' malformed");
      }
    }
  }

  // ---- commit phase: cannot fail. ----
  im.seen.insert(shard.shard_index);
  for (SeriesChunk& p : input.chunks) {
    Impl::SeriesFold& f = im.series[p.name];
    if (f.ranges.empty()) {
      f.total = p.total;
      f.hist_lo = p.hist_lo;
      f.hist_hi = p.hist_hi;
      f.hist_bins = p.hist_bins;
      f.hist.emplace(p.hist_lo, p.hist_hi,
                     static_cast<std::size_t>(std::max<std::int64_t>(p.hist_bins, 1)));
    }
    f.ranges.emplace_back(p.offset, p.offset + static_cast<std::int64_t>(p.values.size()));
    im.buffered += p.values.size();
    f.pending.emplace(p.offset, std::move(p.values));
    im.peak_buffered = std::max(im.peak_buffered, im.buffered);
    // Drain: reduce strictly in global chip order, exactly the operation
    // sequence of a single-process reduction, regardless of arrival order.
    while (!f.pending.empty() && f.pending.begin()->first == f.cursor) {
      std::vector<double> chunk = std::move(f.pending.begin()->second);
      f.pending.erase(f.pending.begin());
      for (const double x : chunk) {
        f.stats.add(x);
        f.hist->add(x);
      }
      if (im.policy == RawSeriesPolicy::kKeep) {
        f.kept.insert(f.kept.end(), chunk.begin(), chunk.end());
      }
      f.cursor += static_cast<std::int64_t>(chunk.size());
      im.buffered -= chunk.size();
      im.reduced += chunk.size();
    }  // under kDropAfterCheck the chunk dies here — peak stays O(window)
  }
  // Retain only the metadata residue of the manifest: raw sample values have
  // been folded, so the doc's samples section is emptied before storage.
  if (shard.doc.contains("results") && shard.doc.at("results").is_object() &&
      shard.doc.at("results").contains("samples")) {
    shard.doc.as_object().at("results").as_object()["samples"] =
        JsonValue(JsonValue::Object{});
  }
  im.shards.push_back(std::move(shard));
}

AggregateResult AggregateBuilder::finalize() {
  Impl& im = *impl_;
  if (im.finalized) throw std::logic_error("AggregateBuilder: finalize() called twice");
  if (im.shards.empty()) {
    throw std::runtime_error("aggregate: no shard manifests were added");
  }
  im.finalized = true;
  std::vector<ShardManifest>& shards = im.shards;
  // Canonical order: every finalize-time merge walks shards in index order,
  // so the output is independent of arrival order.
  std::sort(shards.begin(), shards.end(), [](const ShardManifest& a, const ShardManifest& b) {
    return a.shard_index < b.shard_index;
  });
  const int shard_count = shards.front().shard_count;
  std::vector<std::pair<std::int64_t, std::int64_t>> chip_ranges;
  std::int64_t chips = 0;
  for (const ShardManifest& s : shards) {
    chip_ranges.emplace_back(s.chip_lo, s.chip_hi);
    chips = std::max(chips, s.chip_hi);
  }
  if (static_cast<int>(shards.size()) != shard_count) {
    throw std::runtime_error("aggregate: have " + std::to_string(shards.size()) +
                             " manifests but shards declare a count of " +
                             std::to_string(shard_count));
  }
  require_exact_tiling("shard chip ranges", std::move(chip_ranges), chips);

  std::vector<AggregateConflict> conflicts;
  detect_conflict(shards, "run", conflicts,
                  [](const ShardManifest& s) { return s.doc.string_or("run", ""); });
  detect_conflict(shards, "git_sha", conflicts,
                  [](const ShardManifest& s) { return s.doc.string_or("git_sha", ""); });
  detect_conflict(shards, "kernel_backend", conflicts,
                  [](const ShardManifest& s) { return s.doc.string_or("kernel_backend", ""); });
  detect_conflict(shards, "build", conflicts, [](const ShardManifest& s) {
    return s.doc.contains("build") ? compact(s.doc.at("build")) : std::string("{}");
  });
  detect_conflict(shards, "config", conflicts, [](const ShardManifest& s) {
    return s.doc.contains("config") ? compact(s.doc.at("config")) : std::string("{}");
  });
  // A metrics snapshot that claims a different shard index than the manifest
  // descriptor means the worker's registry was mislabeled — surface it.
  for (const ShardManifest& s : shards) {
    if (s.doc.contains("metrics") && s.doc.at("metrics").is_object() &&
        s.doc.at("metrics").contains("shard")) {
      const double claimed = s.doc.at("metrics").at("shard").as_number();
      if (static_cast<int>(claimed) != s.shard_index) {
        AggregateConflict c;
        c.field = "metrics.shard";
        c.values[s.shard_index] = compact(s.doc.at("metrics").at("shard"));
        conflicts.push_back(std::move(c));
      }
    }
  }

  JsonValue::Object root;
  root["schema"] = JsonValue(kAggregateSchema);
  root["schema_version"] = JsonValue(kAggregateSchemaVersion);
  root["run"] = JsonValue(shards.front().doc.string_or("run", ""));
  root["created_unix_ms"] = JsonValue(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count()));
  root["chips"] = JsonValue(static_cast<std::uint64_t>(chips));
  root["shard_count"] = JsonValue(shard_count);
  root["config"] = shards.front().doc.contains("config") ? shards.front().doc.at("config")
                                                         : JsonValue(JsonValue::Object{});
  root["git_sha"] = JsonValue(shards.front().doc.string_or("git_sha", "unknown"));
  root["build"] = shards.front().doc.contains("build") ? shards.front().doc.at("build")
                                                       : JsonValue(JsonValue::Object{});

  JsonValue::Array shard_rows;
  for (const ShardManifest& s : shards) {
    JsonValue::Object row;
    row["index"] = JsonValue(s.shard_index);
    row["chip_lo"] = JsonValue(static_cast<std::uint64_t>(s.chip_lo));
    row["chip_hi"] = JsonValue(static_cast<std::uint64_t>(s.chip_hi));
    row["manifest"] = JsonValue(s.path);
    row["git_sha"] = JsonValue(s.doc.string_or("git_sha", "unknown"));
    row["threads"] = JsonValue(s.doc.number_or("threads", 0.0));
    row["kernel_backend"] = JsonValue(s.doc.string_or("kernel_backend", "unknown"));
    row["wall_ms"] = JsonValue(shard_wall_ms(s.doc));
    shard_rows.emplace_back(std::move(row));
  }
  root["shards"] = JsonValue(std::move(shard_rows));

  root["stages"] = merge_stages(shards);
  root["profile"] = merge_profiles(shards);
  {
    JsonValue::Object metrics;
    metrics["counters"] = merge_counters(shards);
    metrics["gauges"] = merge_gauges(shards);
    metrics["histograms"] = merge_histograms(shards, conflicts);
    root["metrics"] = JsonValue(std::move(metrics));
  }
  {
    JsonValue::Object samples_out;
    for (auto& [name, f] : im.series) {
      if (f.cursor != f.total || !f.pending.empty()) {
        // Incomplete fold: the ranges must have a gap, an overlap, or a short
        // total — report it through the same check (and message) as ever.
        require_exact_tiling("sample series '" + name + "'", f.ranges, f.total);
        ARO_ASSERT(false, "sample series fold incomplete despite exact tiling");
      }
      JsonValue::Object obj;
      obj["count"] = JsonValue(static_cast<std::uint64_t>(f.stats.count()));
      obj["mean"] = JsonValue(f.stats.mean());
      obj["stddev"] = JsonValue(f.stats.stddev());
      obj["m2"] = JsonValue(f.stats.m2());
      obj["min"] = JsonValue(f.stats.count() > 0 ? f.stats.min() : 0.0);
      obj["max"] = JsonValue(f.stats.count() > 0 ? f.stats.max() : 0.0);
      JsonValue::Object hobj;
      hobj["lo"] = JsonValue(f.hist_lo);
      hobj["hi"] = JsonValue(f.hist_hi);
      JsonValue::Array bins;
      for (std::size_t b = 0; b < f.hist->bins(); ++b) {
        bins.emplace_back(static_cast<std::uint64_t>(f.hist->count(b)));
      }
      hobj["bins"] = JsonValue(std::move(bins));
      obj["histogram"] = JsonValue(std::move(hobj));
      if (im.policy == RawSeriesPolicy::kKeep) {
        JsonValue::Array values;
        values.reserve(f.kept.size());
        for (const double x : f.kept) values.emplace_back(x);
        obj["values"] = JsonValue(std::move(values));
        f.kept.clear();
        f.kept.shrink_to_fit();
      }
      samples_out[name] = JsonValue(std::move(obj));
    }
    JsonValue::Object results;
    results["samples"] = JsonValue(std::move(samples_out));
    results["tallies"] = merge_tallies(shards);
    root["results"] = JsonValue(std::move(results));
  }
  root["raw_series"] =
      JsonValue(im.policy == RawSeriesPolicy::kKeep ? "kept" : "dropped");
  root["conflicts"] = conflicts_to_json(conflicts);

  AggregateResult result;
  result.manifest = JsonValue(std::move(root));
  result.conflicts = std::move(conflicts);
  return result;
}

AggregateResult aggregate_shards(std::vector<ShardManifest> shards, RawSeriesPolicy policy) {
  if (shards.empty()) throw std::runtime_error("aggregate_shards: no shard manifests given");
  AggregateBuilder builder(policy);
  for (ShardManifest& shard : shards) builder.add(std::move(shard));
  return builder.finalize();
}

bool write_aggregate_manifest(const std::string& path, const JsonValue& manifest) {
  const std::string json = manifest.dump(/*indent=*/2);
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    ARO_LOG_ERROR("aggregate", "cannot open aggregate manifest output file",
                  {"path", JsonValue(path)});
    return false;
  }
  out << json << '\n';
  out.flush();
  if (!out) {
    ARO_LOG_ERROR("aggregate", "aggregate manifest write failed", {"path", JsonValue(path)});
    return false;
  }
  ARO_LOG_INFO("aggregate", "aggregate manifest written", {"path", JsonValue(path)});
  return true;
}

}  // namespace aropuf::telemetry
