#include "telemetry/binfmt.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "telemetry/log.hpp"

namespace aropuf::telemetry {

namespace {

void append_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void append_f64(std::string& out, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof bits);
  append_u64(out, bits);
}

/// Bounds-checked little-endian cursor over untrusted bytes.  Every read
/// validates the remaining length first; the throw carries what was being
/// read so fuzz findings are self-describing.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

  void require(std::size_t n, const char* what) const {
    if (remaining() < n) {
      throw BinfmtError(BinfmtErrc::kTruncated,
                        std::string("input ends inside ") + what + " (need " +
                            std::to_string(n) + " bytes, have " + std::to_string(remaining()) +
                            " at offset " + std::to_string(pos_) + ")");
    }
  }

  std::uint16_t u16(const char* what) {
    require(2, what);
    const auto* p = data();
    pos_ += 2;
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  }

  std::uint32_t u32(const char* what) {
    require(4, what);
    const auto* p = data();
    pos_ += 4;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
  }

  std::uint64_t u64(const char* what) {
    require(8, what);
    const auto* p = data();
    pos_ += 8;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
  }

  double f64(const char* what) {
    const std::uint64_t bits = u64(what);
    double d;
    std::memcpy(&d, &bits, sizeof d);
    return d;
  }

  std::string_view bytes(std::size_t n, const char* what) {
    require(n, what);
    const std::string_view out = bytes_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  /// Consumes zero padding up to the next 8-byte file offset.
  void align8() {
    while (pos_ % 8 != 0) {
      require(1, "alignment padding");
      if (bytes_[pos_] != '\0') {
        throw BinfmtError(BinfmtErrc::kBadSeriesHeader,
                          "nonzero alignment padding at offset " + std::to_string(pos_));
      }
      ++pos_;
    }
  }

 private:
  [[nodiscard]] const unsigned char* data() const {
    return reinterpret_cast<const unsigned char*>(bytes_.data()) + pos_;
  }
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// results.samples of a metadata document, or nullptr when absent.
const JsonValue* metadata_samples(const JsonValue& metadata) {
  if (!metadata.is_object() || !metadata.contains("results")) return nullptr;
  const JsonValue& results = metadata.at("results");
  if (!results.is_object() || !results.contains("samples")) return nullptr;
  const JsonValue& samples = results.at("samples");
  return samples.is_object() ? &samples : nullptr;
}

/// The series blocks and the metadata samples section describe the same
/// payload from two sides; any disagreement means a corrupt or hand-doctored
/// container, so the reader refuses it rather than trusting either side.
void cross_check_metadata(const JsonValue& metadata, const std::vector<SeriesView>& series) {
  const JsonValue* samples = metadata_samples(metadata);
  if (samples == nullptr) {
    if (!series.empty()) {
      throw BinfmtError(BinfmtErrc::kMetadataSchema,
                        "series blocks present but metadata has no results.samples object");
    }
    return;
  }
  if (samples->as_object().size() != series.size()) {
    throw BinfmtError(BinfmtErrc::kMetadataSchema,
                      "metadata declares " + std::to_string(samples->as_object().size()) +
                          " sample series, container carries " + std::to_string(series.size()));
  }
  for (const SeriesView& s : series) {
    const std::string name(s.name);
    if (!samples->contains(name)) {
      throw BinfmtError(BinfmtErrc::kBadSeriesName,
                        "series '" + name + "' has no metadata samples entry");
    }
    const JsonValue& meta = samples->at(name);
    if (!meta.is_object()) {
      throw BinfmtError(BinfmtErrc::kMetadataSchema, "samples '" + name + "' is not an object");
    }
    if (meta.contains("values")) {
      throw BinfmtError(BinfmtErrc::kMetadataSchema,
                        "samples '" + name + "' embeds a values array (payload duplicated)");
    }
    const bool agrees =
        meta.number_or("offset", -1.0) == static_cast<double>(s.offset) &&
        meta.number_or("total", -1.0) == static_cast<double>(s.total) &&
        meta.number_or("hist_lo", s.hist_lo) == s.hist_lo &&
        meta.number_or("hist_hi", s.hist_hi) == s.hist_hi &&
        meta.number_or("hist_bins", -1.0) == static_cast<double>(s.hist_bins);
    if (!agrees) {
      throw BinfmtError(BinfmtErrc::kMetadataSchema,
                        "samples '" + name + "' header disagrees with its series block");
    }
  }
}

}  // namespace

const char* binfmt_errc_name(BinfmtErrc code) {
  switch (code) {
    case BinfmtErrc::kTruncated: return "binfmt truncated";
    case BinfmtErrc::kBadMagic: return "binfmt bad magic";
    case BinfmtErrc::kUnsupportedVersion: return "binfmt unsupported version";
    case BinfmtErrc::kReservedNonzero: return "binfmt reserved bytes nonzero";
    case BinfmtErrc::kMetadataParse: return "binfmt metadata unparseable";
    case BinfmtErrc::kMetadataSchema: return "binfmt metadata mismatch";
    case BinfmtErrc::kBadSeriesName: return "binfmt bad series name";
    case BinfmtErrc::kBadSeriesHeader: return "binfmt bad series header";
    case BinfmtErrc::kTrailingGarbage: return "binfmt trailing garbage";
  }
  return "binfmt error";
}

std::vector<double> SeriesView::to_vector() const {
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(value(i));
  return out;
}

bool looks_binary(std::string_view head) {
  return head.size() >= sizeof kBinfmtMagic &&
         std::memcmp(head.data(), kBinfmtMagic, sizeof kBinfmtMagic) == 0;
}

std::string encode_shard_manifest(const JsonValue& metadata,
                                  const std::vector<BinarySeries>& series) {
  for (const BinarySeries& s : series) {
    if (s.name.empty() || s.name.size() > kBinfmtMaxSeriesName) {
      throw std::invalid_argument("binfmt encode: series name empty or longer than " +
                                  std::to_string(kBinfmtMaxSeriesName) + " bytes");
    }
    if (s.hist_bins == 0 || s.hist_bins > kBinfmtMaxHistBins) {
      throw std::invalid_argument("binfmt encode: series '" + s.name +
                                  "' hist_bins out of range");
    }
  }
  const std::string meta_json = metadata.dump(/*indent=*/2);

  std::string out;
  out.append(kBinfmtMagic, sizeof kBinfmtMagic);
  append_u16(out, kBinfmtVersion);
  append_u16(out, 0);  // reserved
  append_u64(out, meta_json.size());
  out += meta_json;
  append_u32(out, static_cast<std::uint32_t>(series.size()));
  for (const BinarySeries& s : series) {
    append_u16(out, static_cast<std::uint16_t>(s.name.size()));
    out += s.name;
    append_u64(out, s.offset);
    append_u64(out, s.total);
    append_f64(out, s.hist_lo);
    append_f64(out, s.hist_hi);
    append_u32(out, s.hist_bins);
    append_u64(out, s.values.size());
    while (out.size() % 8 != 0) out.push_back('\0');
    for (const double v : s.values) append_f64(out, v);
  }

  // The encoder's output must always satisfy its own decoder (including the
  // metadata cross-check); catching an encode-side inconsistency here turns
  // a latent decode failure on some other machine into an immediate error.
  (void)BinaryManifestReader::parse(out);
  return out;
}

BinaryManifestReader BinaryManifestReader::parse(std::string bytes) {
  BinaryManifestReader reader;
  reader.bytes_ = std::move(bytes);
  Cursor cur(reader.bytes_);

  const std::string_view magic = cur.bytes(sizeof kBinfmtMagic, "magic");
  if (std::memcmp(magic.data(), kBinfmtMagic, sizeof kBinfmtMagic) != 0) {
    throw BinfmtError(BinfmtErrc::kBadMagic, "expected 'ARPB'");
  }
  const std::uint16_t version = cur.u16("format version");
  if (version != kBinfmtVersion) {
    throw BinfmtError(BinfmtErrc::kUnsupportedVersion,
                      "container is version " + std::to_string(version) +
                          ", this reader knows version " + std::to_string(kBinfmtVersion));
  }
  if (cur.u16("reserved header bytes") != 0) {
    throw BinfmtError(BinfmtErrc::kReservedNonzero, "header bytes 6-7 must be zero");
  }
  const std::uint64_t meta_len = cur.u64("metadata length");
  cur.require(meta_len, "metadata document");
  const std::string_view meta_json = cur.bytes(static_cast<std::size_t>(meta_len), "metadata");
  try {
    reader.metadata_ = JsonValue::parse(std::string(meta_json));
  } catch (const std::exception& e) {
    throw BinfmtError(BinfmtErrc::kMetadataParse, e.what());
  }
  if (!reader.metadata_.is_object()) {
    throw BinfmtError(BinfmtErrc::kMetadataSchema, "metadata top level must be a JSON object");
  }

  const std::uint32_t series_count = cur.u32("series count");
  std::map<std::string_view, bool> seen;
  for (std::uint32_t i = 0; i < series_count; ++i) {
    SeriesView view;
    const std::uint16_t name_len = cur.u16("series name length");
    if (name_len == 0 || name_len > kBinfmtMaxSeriesName) {
      throw BinfmtError(BinfmtErrc::kBadSeriesName,
                        "series name length " + std::to_string(name_len) + " out of range 1.." +
                            std::to_string(kBinfmtMaxSeriesName));
    }
    view.name = cur.bytes(name_len, "series name");
    if (!seen.emplace(view.name, true).second) {
      throw BinfmtError(BinfmtErrc::kBadSeriesName,
                        "duplicate series '" + std::string(view.name) + "'");
    }
    view.offset = cur.u64("series offset");
    view.total = cur.u64("series total");
    view.hist_lo = cur.f64("series hist_lo");
    view.hist_hi = cur.f64("series hist_hi");
    view.hist_bins = cur.u32("series hist_bins");
    if (view.hist_bins == 0 || view.hist_bins > kBinfmtMaxHistBins) {
      throw BinfmtError(BinfmtErrc::kBadSeriesHeader,
                        "series '" + std::string(view.name) + "' hist_bins out of range");
    }
    const std::uint64_t value_count = cur.u64("series value count");
    cur.align8();
    // The count bounds the read AND the read bounds the count: a declared
    // count larger than the remaining bytes can never allocate or index.
    if (value_count > cur.remaining() / 8) {
      throw BinfmtError(BinfmtErrc::kTruncated,
                        "series '" + std::string(view.name) + "' declares " +
                            std::to_string(value_count) + " values but only " +
                            std::to_string(cur.remaining() / 8) + " fit in the remaining bytes");
    }
    if (view.offset > view.total || value_count > view.total - view.offset) {
      throw BinfmtError(BinfmtErrc::kBadSeriesHeader,
                        "series '" + std::string(view.name) + "' slice [" +
                            std::to_string(view.offset) + ", +" + std::to_string(value_count) +
                            ") exceeds its declared total " + std::to_string(view.total));
    }
    view.count = static_cast<std::size_t>(value_count);
    const std::string_view raw = cur.bytes(view.count * 8, "series values");
    view.raw = reinterpret_cast<const unsigned char*>(raw.data());
    reader.series_.push_back(view);
  }
  if (cur.remaining() != 0) {
    throw BinfmtError(BinfmtErrc::kTrailingGarbage,
                      std::to_string(cur.remaining()) + " bytes after the last series block");
  }
  cross_check_metadata(reader.metadata_, reader.series_);
  return reader;
}

BinaryManifestReader BinaryManifestReader::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw std::runtime_error(path + ": cannot open file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) throw std::runtime_error(path + ": read error");
  try {
    return parse(buffer.str());
  } catch (const BinfmtError& e) {
    throw BinfmtError(e.code(), path + ": " + e.what());
  }
}

JsonValue BinaryManifestReader::to_json() const {
  JsonValue doc = metadata_;
  if (series_.empty()) return doc;
  JsonValue::Object& samples = doc.as_object()
                                   .at("results")
                                   .as_object()
                                   .at("samples")
                                   .as_object();
  for (const SeriesView& s : series_) {
    JsonValue::Array values;
    values.reserve(s.count);
    for (std::size_t i = 0; i < s.count; ++i) values.emplace_back(s.value(i));
    samples.at(std::string(s.name)).as_object()["values"] = JsonValue(std::move(values));
  }
  return doc;
}

bool write_binary_shard_manifest(const std::string& path, const JsonValue& metadata,
                                 const std::vector<BinarySeries>& series) {
  std::string bytes;
  try {
    bytes = encode_shard_manifest(metadata, series);
  } catch (const std::exception& e) {
    ARO_LOG_ERROR("binfmt", "binary manifest encode failed", {"path", JsonValue(path)},
                  {"error", JsonValue(std::string(e.what()))});
    return false;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    ARO_LOG_ERROR("binfmt", "cannot open binary manifest output file",
                  {"path", JsonValue(path)});
    return false;
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    ARO_LOG_ERROR("binfmt", "binary manifest write failed", {"path", JsonValue(path)});
    return false;
  }
  ARO_LOG_INFO("binfmt", "binary manifest written", {"path", JsonValue(path)},
               {"bytes", JsonValue(static_cast<std::uint64_t>(bytes.size()))});
  return true;
}

}  // namespace aropuf::telemetry
