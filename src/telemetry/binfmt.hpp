// Binary shard-manifest container: the transport format for million-chip
// sample series.
//
// Aggregate merges at 10^6+ chips are dominated by JSON parse/serialize of
// the raw per-chip value arrays, not by the fold itself.  This module defines
// a versioned, length-prefixed binary container that keeps the manifest
// *metadata* as a JSON document (still diffable, still schema-checked) and
// moves the per-series sample values out of band as tightly packed IEEE-754
// doubles.  JSON remains the interchange/debug form — aropuf_report --dump
// converts a binary shard manifest back to the exact JSON document — and the
// merged aggregate manifest stays JSON in both cases.
//
// Wire layout (all integers little-endian; see DESIGN.md §10 for the
// rendered diagram and compatibility rules):
//
//   offset  size  field
//   0       4     magic "ARPB"
//   4       2     format version (currently 1)
//   6       2     reserved, must be zero
//   8       8     metadata length M
//   16      M     metadata: the run-manifest JSON document whose
//                 results.samples entries carry headers only (no "values")
//   16+M    4     series count S
//   then S series blocks, each:
//           2     name length L (1..256)
//           L     name bytes (UTF-8; must match a metadata samples key)
//           8     sample offset (first global chip index of this slice)
//           8     sample total (size of the full series)
//           8     hist_lo (f64)
//           8     hist_hi (f64)
//           4     hist_bins (1..1048576)
//           8     value count C (bounded by the bytes that remain)
//           0-7   zero padding to an 8-byte file offset
//           8*C   values, packed little-endian f64, bit-exact (NaN and
//                 infinity payloads survive the round trip — the one thing
//                 the JSON form cannot represent)
//
// Trailing bytes after the last series block are an error.  The decoder is
// a bounds-checked streaming parser over untrusted input: every declared
// length is validated against the remaining buffer before use, counts never
// drive allocations, and all failures throw BinfmtError with a typed code —
// never UB.  Decoded series are zero-copy views into the container buffer;
// value(i) reads through memcpy (a single load on little-endian targets).
//
// Versioning: readers accept exactly the versions they know.  A bumped
// version byte is kUnsupportedVersion, not a guess — fields may have been
// re-packed.  Writers always emit the newest version.  New optional content
// must go into the JSON metadata document (which tolerates unknown keys);
// the packed sections exist only for bulk values, where layout is law.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"

namespace aropuf::telemetry {

inline constexpr char kBinfmtMagic[4] = {'A', 'R', 'P', 'B'};
inline constexpr std::uint16_t kBinfmtVersion = 1;
inline constexpr std::size_t kBinfmtMaxSeriesName = 256;
inline constexpr std::uint32_t kBinfmtMaxHistBins = 1u << 20;

/// Typed decode failure codes — the fuzz harness treats BinfmtError as the
/// one acceptable outcome on garbage input; anything else is a finding.
enum class BinfmtErrc {
  kTruncated,           ///< input ends before a declared length
  kBadMagic,            ///< first four bytes are not "ARPB"
  kUnsupportedVersion,  ///< version field is not one this reader knows
  kReservedNonzero,     ///< reserved header bytes must be zero
  kMetadataParse,       ///< embedded metadata is not valid JSON
  kMetadataSchema,      ///< metadata shape disagrees with the series blocks
  kBadSeriesName,       ///< empty, oversized, duplicate, or non-metadata name
  kBadSeriesHeader,     ///< count/bins/padding field out of bounds
  kTrailingGarbage,     ///< bytes remain after the last series block
};

[[nodiscard]] const char* binfmt_errc_name(BinfmtErrc code);

class BinfmtError : public std::runtime_error {
 public:
  BinfmtError(BinfmtErrc code, const std::string& what)
      : std::runtime_error(std::string(binfmt_errc_name(code)) + ": " + what), code_(code) {}
  [[nodiscard]] BinfmtErrc code() const { return code_; }

 private:
  BinfmtErrc code_;
};

/// One sample series to encode: the same fields sim/shard_study.hpp's
/// SampleSeries carries, decoupled so telemetry stays free of sim types.
struct BinarySeries {
  std::string name;
  std::uint64_t offset = 0;  ///< first global sample index of this slice
  std::uint64_t total = 0;   ///< size of the full series across all shards
  double hist_lo = 0.0;
  double hist_hi = 1.0;
  std::uint32_t hist_bins = 50;
  std::vector<double> values;
};

/// Zero-copy view of one decoded series; `raw` points into the reader's
/// buffer and stays valid for the reader's lifetime.
struct SeriesView {
  std::string_view name;
  std::uint64_t offset = 0;
  std::uint64_t total = 0;
  double hist_lo = 0.0;
  double hist_hi = 1.0;
  std::uint32_t hist_bins = 0;
  const unsigned char* raw = nullptr;  ///< count packed little-endian doubles
  std::size_t count = 0;

  /// Bit-exact value decode; compiles to a plain load on little-endian
  /// targets (memcpy keeps it alignment- and aliasing-safe).
  [[nodiscard]] double value(std::size_t i) const {
    std::uint64_t bits;
    std::memcpy(&bits, raw + i * 8, sizeof bits);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    bits = __builtin_bswap64(bits);
#endif
    double d;
    std::memcpy(&d, &bits, sizeof d);
    return d;
  }

  /// Copies all values out (one bulk pass; used to hand the fold an owned
  /// buffer for its out-of-order window).
  [[nodiscard]] std::vector<double> to_vector() const;
};

/// Encodes a shard manifest: `metadata` is the manifest document whose
/// results.samples entries must carry headers only (no "values" arrays —
/// throws std::invalid_argument otherwise, that would duplicate the payload);
/// `series` supplies the packed values.  Every series must match a metadata
/// samples entry and vice versa.
[[nodiscard]] std::string encode_shard_manifest(const JsonValue& metadata,
                                                const std::vector<BinarySeries>& series);

/// True when `head` begins with the binfmt magic (format sniffing; works on
/// any prefix of at least four bytes).
[[nodiscard]] bool looks_binary(std::string_view head);

/// Parses and fully validates a binary shard-manifest container.  All
/// structural and cross-section checks happen in parse(); a constructed
/// reader is internally consistent.  Throws BinfmtError on any defect.
class BinaryManifestReader {
 public:
  [[nodiscard]] static BinaryManifestReader parse(std::string bytes);
  /// Reads and parses `path`; file errors surface as std::runtime_error with
  /// the path in the message, decode errors as BinfmtError.
  [[nodiscard]] static BinaryManifestReader read_file(const std::string& path);

  /// The embedded manifest document (samples headers only, no values).
  [[nodiscard]] const JsonValue& metadata() const { return metadata_; }
  [[nodiscard]] std::size_t series_count() const { return series_.size(); }
  [[nodiscard]] const SeriesView& series(std::size_t i) const { return series_.at(i); }

  /// Reconstructs the equivalent JSON shard manifest with every series'
  /// values re-embedded — the debug/interchange escape hatch.
  [[nodiscard]] JsonValue to_json() const;

 private:
  BinaryManifestReader() = default;
  std::string bytes_;  ///< owns the storage every SeriesView points into
  JsonValue metadata_;
  std::vector<SeriesView> series_;
};

/// Serializes `metadata` + `series` to `path`.  Returns false and logs at
/// error level on write failure (same contract as write_manifest).
bool write_binary_shard_manifest(const std::string& path, const JsonValue& metadata,
                                 const std::vector<BinarySeries>& series);

}  // namespace aropuf::telemetry
