// Process-wide metrics registry: counters, gauges, and sharded histograms.
//
// The Monte Carlo engine increments these from every worker thread, so the
// write paths are built for contention:
//  * Counter / Gauge — one relaxed atomic op, no locks;
//  * ShardedHistogram — each thread records into its own shard (created on
//    first use, owned by the histogram), so recording never takes the
//    registry lock; snapshot() merges the shards with RunningStats::merge,
//    the same reduction pattern the scenario loops use.
//
// Names are dotted strings ("parallel.chunk_ms").  Instruments live for the
// lifetime of the registry (never deleted), so hot paths cache references in
// function-local statics; reset() zeroes values in place and keeps every
// reference valid — that is what the tests rely on.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/statistics.hpp"

namespace aropuf::telemetry {

/// Monotonic counter (resets only via MetricsRegistry::reset).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
///
/// Cross-process merge semantics (the sharded-run aggregator in
/// telemetry/aggregate.hpp): a gauge is a point-in-time fact, so summing or
/// averaging values from different shards is meaningless.  The aggregator
/// resolves gauges per the documented policy — "max" by default, "last"
/// (value from the highest shard index) for names ending in ".last" — and
/// always retains every shard's value alongside the resolved one, keyed by
/// the shard index the manifest self-reports.  A merged manifest therefore
/// never silently averages (or drops) per-shard gauge readings.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged view of a histogram at one point in time.
struct HistogramSnapshot {
  RunningStats stats;               ///< count/mean/stddev/min/max over all samples
  double lo = 0.0;                  ///< bin range lower edge
  double hi = 0.0;                  ///< bin range upper edge
  std::vector<std::uint64_t> bins;  ///< out-of-range samples clamp to the edge bins
};

/// Fixed-range histogram sharded per recording thread.  record() touches only
/// the calling thread's shard; snapshot() merges shards in creation order.
class ShardedHistogram {
 public:
  ShardedHistogram(double lo, double hi, std::size_t bins);
  ~ShardedHistogram();

  ShardedHistogram(const ShardedHistogram&) = delete;
  ShardedHistogram& operator=(const ShardedHistogram&) = delete;

  /// Lock-free after the calling thread's first record (shard creation takes
  /// the shard-list mutex once per thread).
  void record(double x) noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Zeroes every shard in place (concurrent record() calls may survive).
  void reset() noexcept;

 private:
  struct Shard;
  Shard& local_shard() noexcept;

  const double lo_;
  const double hi_;
  const std::size_t bins_;
  const std::uint64_t id_;  ///< process-unique, never reused (thread-local cache key)

  mutable std::mutex shards_mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Registry of named instruments.  Lookup takes a mutex; hot paths should
/// look up once and keep the returned reference.
class MetricsRegistry {
 public:
  [[nodiscard]] static MetricsRegistry& global();

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// The (lo, hi, bins) shape is fixed by the first caller; later callers get
  /// the same instrument regardless of the shape they pass.
  [[nodiscard]] ShardedHistogram& histogram(const std::string& name, double lo, double hi,
                                            std::size_t bins);

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, mean,
  /// stddev, m2, min, max, lo, hi, bins[]}}} — embedded in run manifests.
  /// When a shard index has been declared (set_shard_index), the snapshot
  /// also carries {"shard": k} so the shard-merge aggregator can attribute
  /// every gauge reading to its producing process.  `m2` is the raw Welford
  /// second moment: it round-trips exactly (stddev does not), which is what
  /// lets the aggregator merge histogram stats via RunningStats::merge.
  [[nodiscard]] JsonValue snapshot_json() const;

  /// Declares which shard of a multi-process run this process is (>= 0).
  /// Unset (-1) by default; single-process runs never call this.
  void set_shard_index(int shard) noexcept { shard_index_.store(shard, std::memory_order_relaxed); }
  [[nodiscard]] int shard_index() const noexcept {
    return shard_index_.load(std::memory_order_relaxed);
  }

  /// Zeroes every instrument in place.  References stay valid.
  void reset();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  mutable std::mutex mutex_;
  std::atomic<int> shard_index_{-1};
  // std::map keeps snapshot output sorted by name (canonical manifests).
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<ShardedHistogram>> histograms_;
};

}  // namespace aropuf::telemetry
