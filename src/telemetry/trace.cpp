#include "telemetry/trace.hpp"

#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "common/cli.hpp"
#include "telemetry/log.hpp"

#if !defined(_WIN32)
#include <unistd.h>
#else
#include <process.h>
#endif

namespace aropuf::telemetry {

namespace {

struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';  // 'X' complete span, 'C' counter sample
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  int tid = 0;
  JsonValue::Object args;
};

/// The OS pid, so multi-process timelines merged by pid stay distinct even
/// before the fleet view reassigns synthetic process rows.
int trace_pid() noexcept {
#if !defined(_WIN32)
  return static_cast<int>(::getpid());
#else
  return ::_getpid();
#endif
}

struct TraceState {
  std::atomic<bool> enabled{false};
  std::mutex mutex;
  std::string path;
  std::string process_label = "aropuf";
  std::map<int, std::string> thread_labels;
  std::vector<TraceEvent> events;

  TraceState() {
    if (const char* env = cli::env_value("AROPUF_TRACE")) {
      path = env;
      events.reserve(1024);
      enabled.store(true, std::memory_order_release);
      // Write whatever was collected even if the program never calls
      // flush_trace() itself (bench binaries get tracing "for free").
      std::atexit([] { flush_trace(); });
    }
  }
};

TraceState& state() {
  // Intentionally leaked.  The constructor registers a std::atexit flush,
  // and atexit handlers run in reverse registration order — a plain static
  // would register its destructor *after* that handler (the destructor is
  // enrolled once the constructor body finishes), so ~TraceState would run
  // first and the exit-time flush would read destroyed events.  Leaking
  // keeps the buffer alive until the flush has written it.
  static TraceState* s = new TraceState();
  return *s;
}

int next_thread_id() noexcept {
  static std::atomic<int> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// One "M" metadata record.  Carries ts/tid too so consumers (and the CI
/// validator) can require those fields on every event.
JsonValue metadata_event(const char* kind, int pid, int tid, const std::string& label) {
  JsonValue::Object meta;
  meta["name"] = JsonValue(kind);
  meta["ph"] = JsonValue("M");
  meta["ts"] = JsonValue(std::uint64_t{0});
  meta["pid"] = JsonValue(pid);
  meta["tid"] = JsonValue(tid);
  JsonValue::Object meta_args;
  meta_args["name"] = JsonValue(label);
  meta["args"] = JsonValue(std::move(meta_args));
  return JsonValue(std::move(meta));
}

JsonValue events_to_json(const std::vector<TraceEvent>& events, const std::string& process_label,
                         const std::map<int, std::string>& thread_labels) {
  const int pid = trace_pid();
  JsonValue::Array trace_events;
  trace_events.reserve(events.size() + 2);
  // Process/thread naming metadata makes the timeline readable in
  // chrome://tracing and Perfetto: role-labeled process rows instead of
  // anonymous pids, named threads instead of bare tids.
  trace_events.emplace_back(metadata_event("process_name", pid, 0, process_label));
  std::set<int> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  for (const auto& [tid, label] : thread_labels) tids.insert(tid);
  for (const int tid : tids) {
    const auto it = thread_labels.find(tid);
    const std::string label =
        it != thread_labels.end() ? it->second : "thread " + std::to_string(tid);
    trace_events.emplace_back(metadata_event("thread_name", pid, tid, label));
  }
  for (const TraceEvent& e : events) {
    JsonValue::Object obj;
    obj["name"] = JsonValue(e.name);
    obj["cat"] = JsonValue(e.category);
    obj["ph"] = JsonValue(std::string(1, e.phase));
    obj["ts"] = JsonValue(e.ts_us);
    if (e.phase == 'X') obj["dur"] = JsonValue(e.dur_us);
    obj["pid"] = JsonValue(pid);
    obj["tid"] = JsonValue(e.tid);
    if (!e.args.empty()) obj["args"] = JsonValue(e.args);
    trace_events.emplace_back(std::move(obj));
  }
  JsonValue::Object root;
  root["traceEvents"] = JsonValue(std::move(trace_events));
  root["displayTimeUnit"] = JsonValue("ms");
  return JsonValue(std::move(root));
}

}  // namespace

bool trace_enabled() noexcept { return state().enabled.load(std::memory_order_relaxed); }

std::uint64_t steady_now_us() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(clock::now() - start).count());
}

int trace_thread_id() noexcept {
  thread_local const int tid = next_thread_id();
  return tid;
}

void start_trace(const std::string& path) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.path = path;
  s.events.clear();
  s.events.reserve(1024);
  s.enabled.store(true, std::memory_order_release);
}

void start_trace_buffered() { start_trace(std::string()); }

std::size_t trace_event_count() noexcept {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.events.size();
}

void set_trace_process_label(const std::string& label) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.process_label = label;
}

void set_trace_thread_label(const std::string& label) {
  const int tid = trace_thread_id();
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.thread_labels[tid] = label;
}

JsonValue::Array drain_trace_events() {
  TraceState& s = state();
  std::vector<TraceEvent> events;
  std::map<int, std::string> thread_labels;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.enabled.load(std::memory_order_relaxed)) return {};
    events.swap(s.events);
    thread_labels = s.thread_labels;
  }
  JsonValue::Array out;
  out.reserve(events.size());
  for (TraceEvent& e : events) {
    JsonValue::Object obj;
    obj["name"] = JsonValue(std::move(e.name));
    obj["cat"] = JsonValue(std::move(e.category));
    obj["ph"] = JsonValue(std::string(1, e.phase));
    obj["ts"] = JsonValue(e.ts_us);
    if (e.phase == 'X') obj["dur"] = JsonValue(e.dur_us);
    obj["tid"] = JsonValue(e.tid);
    const auto label = thread_labels.find(e.tid);
    if (label != thread_labels.end()) obj["tname"] = JsonValue(label->second);
    if (!e.args.empty()) obj["args"] = JsonValue(std::move(e.args));
    out.emplace_back(std::move(obj));
  }
  return out;
}

double trace_epoch_unix_ms() {
  const double now_unix_ms =
      static_cast<double>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::system_clock::now().time_since_epoch())
                              .count());
  return now_unix_ms - static_cast<double>(steady_now_us()) / 1000.0;
}

bool flush_trace() {
  TraceState& s = state();
  std::vector<TraceEvent> events;
  std::map<int, std::string> thread_labels;
  std::string path;
  std::string process_label;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.enabled.load(std::memory_order_relaxed)) return true;
    s.enabled.store(false, std::memory_order_release);
    events.swap(s.events);
    thread_labels = s.thread_labels;
    process_label = s.process_label;
    path.swap(s.path);
  }
  // Buffer-only session (fleet workers): ship-over-the-wire is the output;
  // ending the session discards whatever was never drained.
  if (path.empty()) return true;
  const std::string json = events_to_json(events, process_label, thread_labels).dump(/*indent=*/0);
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    ARO_LOG_ERROR("trace", "cannot open trace output file", {"path", JsonValue(path)});
    return false;
  }
  out << json << '\n';
  out.flush();
  if (!out) {
    ARO_LOG_ERROR("trace", "trace write failed", {"path", JsonValue(path)},
                  {"events", JsonValue(static_cast<std::uint64_t>(events.size()))});
    return false;
  }
  ARO_LOG_INFO("trace", "trace written", {"path", JsonValue(path)},
               {"events", JsonValue(static_cast<std::uint64_t>(events.size()))});
  return true;
}

namespace {

void append_event(TraceEvent e) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.enabled.load(std::memory_order_relaxed)) return;
  s.events.push_back(std::move(e));
}

}  // namespace

void trace_counter(std::string_view name, std::initializer_list<TraceCounterValue> values) {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.name.assign(name);
  e.category = "resource";
  e.phase = 'C';
  e.ts_us = steady_now_us();
  e.tid = trace_thread_id();
  for (const auto& [series, value] : values) e.args[std::string(series)] = JsonValue(value);
  append_event(std::move(e));
}

void trace_complete(std::string_view name, std::string_view category, std::uint64_t start_us,
                    JsonValue::Object args) {
  if (!trace_enabled()) return;
  const std::uint64_t end_us = steady_now_us();
  TraceEvent e;
  e.name.assign(name);
  e.category.assign(category);
  e.ts_us = start_us;
  e.dur_us = end_us > start_us ? end_us - start_us : 0;
  e.tid = trace_thread_id();
  e.args = std::move(args);
  append_event(std::move(e));
}

TraceScope::TraceScope(std::string_view name, std::string_view category)
    : TraceScope(name, category, {}) {}

TraceScope::TraceScope(std::string_view name, std::string_view category,
                       std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) return;
  active_ = true;
  start_us_ = steady_now_us();
  name_.assign(name);
  category_.assign(category);
  for (const auto& [key, value] : args) args_[std::string(key)] = value;
}

TraceScope::~TraceScope() {
  if (!active_) return;
  const std::uint64_t end_us = steady_now_us();
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  // The session may have flushed while the span was open; drop it then.
  if (!s.enabled.load(std::memory_order_relaxed)) return;
  TraceEvent e;
  e.name = std::move(name_);
  e.category = std::move(category_);
  e.ts_us = start_us_;
  e.dur_us = end_us - start_us_;
  e.tid = trace_thread_id();
  e.args = std::move(args_);
  s.events.push_back(std::move(e));
}

}  // namespace aropuf::telemetry
