#include "telemetry/trace.hpp"

#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <vector>

#include "common/cli.hpp"
#include "telemetry/log.hpp"

namespace aropuf::telemetry {

namespace {

struct TraceEvent {
  std::string name;
  std::string category;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  int tid = 0;
  JsonValue::Object args;
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::mutex mutex;
  std::string path;
  std::vector<TraceEvent> events;

  TraceState() {
    if (const char* env = cli::env_value("AROPUF_TRACE")) {
      path = env;
      events.reserve(1024);
      enabled.store(true, std::memory_order_release);
      // Write whatever was collected even if the program never calls
      // flush_trace() itself (bench binaries get tracing "for free").
      std::atexit([] { flush_trace(); });
    }
  }
};

TraceState& state() {
  static TraceState s;
  return s;
}

int next_thread_id() noexcept {
  static std::atomic<int> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

JsonValue events_to_json(const std::vector<TraceEvent>& events) {
  JsonValue::Array trace_events;
  trace_events.reserve(events.size() + 1);
  {
    // Process-name metadata record; carries ts/tid too so consumers (and the
    // CI validator) can require those fields on every event.
    JsonValue::Object meta;
    meta["name"] = JsonValue("process_name");
    meta["ph"] = JsonValue("M");
    meta["ts"] = JsonValue(std::uint64_t{0});
    meta["pid"] = JsonValue(1);
    meta["tid"] = JsonValue(0);
    JsonValue::Object meta_args;
    meta_args["name"] = JsonValue("aropuf");
    meta["args"] = JsonValue(std::move(meta_args));
    trace_events.emplace_back(std::move(meta));
  }
  for (const TraceEvent& e : events) {
    JsonValue::Object obj;
    obj["name"] = JsonValue(e.name);
    obj["cat"] = JsonValue(e.category);
    obj["ph"] = JsonValue("X");
    obj["ts"] = JsonValue(e.ts_us);
    obj["dur"] = JsonValue(e.dur_us);
    obj["pid"] = JsonValue(1);
    obj["tid"] = JsonValue(e.tid);
    if (!e.args.empty()) obj["args"] = JsonValue(e.args);
    trace_events.emplace_back(std::move(obj));
  }
  JsonValue::Object root;
  root["traceEvents"] = JsonValue(std::move(trace_events));
  root["displayTimeUnit"] = JsonValue("ms");
  return JsonValue(std::move(root));
}

}  // namespace

bool trace_enabled() noexcept { return state().enabled.load(std::memory_order_relaxed); }

std::uint64_t steady_now_us() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(clock::now() - start).count());
}

int trace_thread_id() noexcept {
  thread_local const int tid = next_thread_id();
  return tid;
}

void start_trace(const std::string& path) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.path = path;
  s.events.clear();
  s.events.reserve(1024);
  s.enabled.store(true, std::memory_order_release);
}

std::size_t trace_event_count() noexcept {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.events.size();
}

bool flush_trace() {
  TraceState& s = state();
  std::vector<TraceEvent> events;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.enabled.load(std::memory_order_relaxed)) return true;
    s.enabled.store(false, std::memory_order_release);
    events.swap(s.events);
    path.swap(s.path);
  }
  const std::string json = events_to_json(events).dump(/*indent=*/0);
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    ARO_LOG_ERROR("trace", "cannot open trace output file", {"path", JsonValue(path)});
    return false;
  }
  out << json << '\n';
  out.flush();
  if (!out) {
    ARO_LOG_ERROR("trace", "trace write failed", {"path", JsonValue(path)},
                  {"events", JsonValue(static_cast<std::uint64_t>(events.size()))});
    return false;
  }
  ARO_LOG_INFO("trace", "trace written", {"path", JsonValue(path)},
               {"events", JsonValue(static_cast<std::uint64_t>(events.size()))});
  return true;
}

TraceScope::TraceScope(std::string_view name, std::string_view category)
    : TraceScope(name, category, {}) {}

TraceScope::TraceScope(std::string_view name, std::string_view category,
                       std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) return;
  active_ = true;
  start_us_ = steady_now_us();
  name_.assign(name);
  category_.assign(category);
  for (const auto& [key, value] : args) args_[std::string(key)] = value;
}

TraceScope::~TraceScope() {
  if (!active_) return;
  const std::uint64_t end_us = steady_now_us();
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  // The session may have flushed while the span was open; drop it then.
  if (!s.enabled.load(std::memory_order_relaxed)) return;
  TraceEvent e;
  e.name = std::move(name_);
  e.category = std::move(category_);
  e.ts_us = start_us_;
  e.dur_us = end_us - start_us_;
  e.tid = trace_thread_id();
  e.args = std::move(args_);
  s.events.push_back(std::move(e));
}

}  // namespace aropuf::telemetry
