// Cross-process progress heartbeats for sharded runs.
//
// Each shard worker appends one JSON line per milestone to a shared progress
// file; the orchestrator tails the file and renders a terminal HUD (or plain
// log lines when stdout is not a TTY).  The format is append-only JSONL so
// concurrent writers need no coordination beyond O_APPEND semantics: every
// heartbeat is a single short write, well under any practical atomic-append
// limit, and the reader tolerates a torn or malformed line by skipping it.
//
// Heartbeat line schema (validated by scripts/validate_manifest.py
// --progress):
//   {"ts_unix_ms": ..., "shard": k, "stage": "e2.aro", "done": u,
//    "total": U, "elapsed_ms": ...}
// `done`/`total` count abstract work units (the study defines them); `stage`
// is a short dotted label; "done" and "failed" are reserved terminal stages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace aropuf::telemetry {

struct Heartbeat {
  std::int64_t ts_unix_ms = 0;  ///< wall-clock stamp of the beat
  int shard = 0;                ///< shard index of the reporting worker
  std::string stage;            ///< current milestone ("done"/"failed" terminal)
  std::int64_t done = 0;        ///< work units completed so far
  std::int64_t total = 0;       ///< work units this shard owns in total
  double elapsed_ms = 0.0;      ///< worker-local elapsed wall time
};

[[nodiscard]] JsonValue heartbeat_to_json(const Heartbeat& beat);
/// Throws std::invalid_argument / std::runtime_error on schema mismatch.
[[nodiscard]] Heartbeat heartbeat_from_json(const JsonValue& line);

/// Appends heartbeats for one shard.  Each beat reopens the file in append
/// mode and writes one line — slow-path simplicity that keeps concurrent
/// shard writers safe without shared state.
class ProgressWriter {
 public:
  /// An empty path disables the writer (beat() becomes a cheap no-op).
  ProgressWriter(std::string path, int shard);

  /// Appends one heartbeat line.  Returns false when the write failed (the
  /// run itself is unaffected: progress is advisory, results are not).
  bool beat(const std::string& stage, std::int64_t done, std::int64_t total);

  [[nodiscard]] bool enabled() const noexcept { return !path_.empty(); }

 private:
  std::string path_;
  int shard_;
  std::int64_t start_unix_ms_;
};

/// Wall-clock ETA over abstract work units, robust to resumed runs.  Work
/// that was already complete when tracking began (resumed/skipped shards) is
/// pinned as a baseline and excluded from the observed rate, so the estimate
/// reflects only work actually performed this run.  Without the baseline a
/// resumed run credits the skipped shards' units to the current elapsed
/// time, which inflates the apparent rate and prints a stale (far too
/// optimistic) ETA — the orchestrators recompute the baseline from the
/// remaining jobs instead.
class EtaEstimator {
 public:
  /// Registers `units` of work that were already complete before tracking
  /// began.  Additive: call once per resumed shard or once with the sum.
  void add_baseline(double units) noexcept { baseline_ += units; }
  [[nodiscard]] double baseline() const noexcept { return baseline_; }

  /// Seconds remaining to reach `total` units given `done` units complete
  /// overall (baseline included) after `elapsed_s` seconds of this run.
  /// Returns a negative value while no meaningful estimate exists (<1% of
  /// the remaining work performed this run, or degenerate inputs).
  [[nodiscard]] double eta_seconds(double done, double total, double elapsed_s) const noexcept;

 private:
  double baseline_ = 0.0;
};

/// Incremental reader: each poll() returns the complete, well-formed
/// heartbeat lines appended since the previous poll.  A trailing partial
/// line (a writer mid-append, or a byte-truncated file) is buffered until
/// its newline arrives — never surfaced as a parse error.  Malformed
/// complete lines are counted and skipped; when a torn fragment from a dead
/// writer fuses with the next healthy writer's appended line, the good
/// suffix is recovered and only the fragment counts as malformed.
class ProgressReader {
 public:
  explicit ProgressReader(std::string path);

  [[nodiscard]] std::vector<Heartbeat> poll();
  [[nodiscard]] std::size_t malformed_lines() const noexcept { return malformed_; }

 private:
  std::string path_;
  std::int64_t offset_ = 0;
  std::string partial_;
  std::size_t malformed_ = 0;
};

}  // namespace aropuf::telemetry
