#include "telemetry/prof.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "common/cli.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#if !defined(_WIN32)
#include <sys/resource.h>
#include <unistd.h>
#endif

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>

#include <cerrno>
#define AROPUF_HAVE_PERF_EVENT 1
#endif

namespace aropuf::telemetry {

namespace {

// ---------------------------------------------------------------------------
// Clock / rusage primitives shared by readers and the sampler.

double process_cpu_ms() noexcept {
#if !defined(_WIN32)
  struct rusage ru {};
  ::getrusage(RUSAGE_SELF, &ru);
  const auto tv_ms = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) * 1000.0 + static_cast<double>(tv.tv_usec) / 1000.0;
  };
  return tv_ms(ru.ru_utime) + tv_ms(ru.ru_stime);
#else
  return static_cast<double>(std::clock()) * 1000.0 / static_cast<double>(CLOCKS_PER_SEC);
#endif
}

void split_cpu_ms(double& user_ms, double& sys_ms) noexcept {
#if !defined(_WIN32)
  struct rusage ru {};
  ::getrusage(RUSAGE_SELF, &ru);
  const auto tv_ms = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) * 1000.0 + static_cast<double>(tv.tv_usec) / 1000.0;
  };
  user_ms = tv_ms(ru.ru_utime);
  sys_ms = tv_ms(ru.ru_stime);
#else
  user_ms = process_cpu_ms();
  sys_ms = 0.0;
#endif
}

/// Threads in this process from /proc/self/status; 0 where unavailable.
int thread_count() noexcept {
#if defined(__linux__)
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return static_cast<int>(std::strtol(line.c_str() + 8, nullptr, 10));
    }
  }
#endif
  return 0;
}

// ---------------------------------------------------------------------------
// perf_event plumbing (Linux only).

#if defined(AROPUF_HAVE_PERF_EVENT)

/// One counter spec: type + config + which CounterDelta field it feeds.
struct PerfSpec {
  std::uint32_t type;
  std::uint64_t config;
  const char* name;
};

// Order matters: indexes into CounterReader fd/start arrays.  cycles,
// instructions and task-clock are required for a valid delta; the branch
// and cache counters are best-effort (some PMUs expose only a subset).
constexpr PerfSpec kPerfSpecs[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, "cycles"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, "instructions"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, "branch-misses"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES, "cache-references"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, "cache-misses"},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK, "task-clock"},
};
constexpr int kNumPerfSpecs = 6;
constexpr int kIdxCycles = 0;
constexpr int kIdxInstructions = 1;
constexpr int kIdxBranchMisses = 2;
constexpr int kIdxCacheRefs = 3;
constexpr int kIdxCacheMisses = 4;
constexpr int kIdxTaskClock = 5;

/// Opens one counter for this process, all CPUs it runs on.  inherit=1
/// counts worker threads too — which forbids grouped reads
/// (PERF_FORMAT_GROUP), so counters are opened individually and read
/// per-fd, each with its own TIME_ENABLED/TIME_RUNNING multiplex scaling.
int open_perf_counter(const PerfSpec& spec) noexcept {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = 0;
  attr.inherit = 1;
  attr.exclude_kernel = 1;  // required under perf_event_paranoid >= 1
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      ::syscall(__NR_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1, /*group_fd=*/-1, 0UL));
}

/// Multiplex-scaled counter value; NaN-free (returns raw value when the
/// kernel reports zero running time).
double read_scaled_counter(int fd) noexcept {
  std::uint64_t buf[3] = {0, 0, 0};  // value, time_enabled, time_running
  if (fd < 0) return 0.0;
  const ssize_t n = ::read(fd, buf, sizeof(buf));
  if (n != static_cast<ssize_t>(sizeof(buf))) return 0.0;
  const double value = static_cast<double>(buf[0]);
  if (buf[2] == 0 || buf[1] == buf[2]) return value;
  return value * (static_cast<double>(buf[1]) / static_cast<double>(buf[2]));
}

int read_perf_event_paranoid() noexcept {
  std::ifstream in("/proc/sys/kernel/perf_event_paranoid");
  int level = -2;
  if (in) in >> level;
  return level;
}

#endif  // AROPUF_HAVE_PERF_EVENT

// ---------------------------------------------------------------------------
// Mode resolution.

bool env_truthy(const char* value) noexcept {
  return value != nullptr && (std::strcmp(value, "on") == 0 || std::strcmp(value, "1") == 0 ||
                              std::strcmp(value, "true") == 0);
}

ProfStatus resolve_prof_status() {
  ProfStatus status;
  const char* prof = cli::env_value("AROPUF_PROF");
  if (!env_truthy(prof)) {
    if (prof != nullptr && std::strcmp(prof, "off") != 0 && std::strcmp(prof, "0") != 0 &&
        std::strcmp(prof, "false") != 0) {
      ARO_LOG_WARN("prof", "unrecognized AROPUF_PROF value, profiling stays off",
                   {"value", JsonValue(std::string(prof))});
    }
    return status;  // kOff
  }
  if (cli::env_value("AROPUF_PROF_FORCE_FALLBACK") != nullptr) {
    status.mode = ProfMode::kFallback;
    status.fallback_reason = "forced by AROPUF_PROF_FORCE_FALLBACK";
    return status;
  }
#if defined(AROPUF_HAVE_PERF_EVENT)
  // Probe the two counters a valid delta requires; any refusal (paranoid
  // level, missing PMU in a VM, seccomp) downgrades the whole process.
  for (const int idx : {kIdxCycles, kIdxInstructions}) {
    const int fd = open_perf_counter(kPerfSpecs[idx]);
    if (fd < 0) {
      const int err = errno;
      status.mode = ProfMode::kFallback;
      status.fallback_reason = std::string("perf_event_open(") + kPerfSpecs[idx].name +
                               ") failed: " + std::strerror(err) +
                               " (perf_event_paranoid=" + std::to_string(read_perf_event_paranoid()) +
                               ")";
      return status;
    }
    ::close(fd);
  }
  status.mode = ProfMode::kCounters;
  return status;
#else
  status.mode = ProfMode::kFallback;
  status.fallback_reason = "perf_event unavailable on this platform";
  return status;
#endif
}

struct ProfStatusCache {
  std::mutex mutex;
  bool resolved = false;
  ProfStatus status;
};

ProfStatusCache& status_cache() {
  static ProfStatusCache c;
  return c;
}

}  // namespace

const char* prof_mode_name(ProfMode mode) noexcept {
  switch (mode) {
    case ProfMode::kCounters:
      return "counters";
    case ProfMode::kFallback:
      return "fallback";
    case ProfMode::kOff:
      break;
  }
  return "off";
}

const ProfStatus& prof_status() {
  ProfStatusCache& c = status_cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  if (!c.resolved) {
    c.status = resolve_prof_status();
    c.resolved = true;
    if (c.status.mode == ProfMode::kFallback) {
      ARO_LOG_WARN("prof", "hardware counters unavailable, rusage fallback",
                   {"reason", JsonValue(c.status.fallback_reason)});
    }
  }
  return c.status;
}

// ---------------------------------------------------------------------------
// RSS helpers (shared with bench_fold_throughput).

long peak_rss_kib() noexcept {
#if defined(_WIN32)
  return 0;
#else
  struct rusage ru {};
  ::getrusage(RUSAGE_SELF, &ru);
#if defined(__APPLE__)
  return ru.ru_maxrss / 1024;  // bytes on macOS
#else
  return ru.ru_maxrss;  // KiB on Linux
#endif
#endif
}

long current_rss_kib() noexcept {
#if defined(__linux__)
  // statm field 2 is resident pages.
  std::ifstream in("/proc/self/statm");
  long size_pages = 0;
  long resident_pages = 0;
  if (in >> size_pages >> resident_pages) {
    const long page_kib = ::sysconf(_SC_PAGESIZE) / 1024;
    return resident_pages * page_kib;
  }
#endif
  return peak_rss_kib();
}

// ---------------------------------------------------------------------------
// CounterDelta.

double CounterDelta::ipc() const noexcept {
  if (!counters_valid || cycles == 0) return 0.0;
  return static_cast<double>(instructions) / static_cast<double>(cycles);
}

double CounterDelta::cache_miss_rate() const noexcept {
  if (!counters_valid || !cache_valid || cache_references == 0) return 0.0;
  return static_cast<double>(cache_misses) / static_cast<double>(cache_references);
}

double CounterDelta::ghz() const noexcept {
  if (!counters_valid || task_clock_ms <= 0.0) return 0.0;
  return static_cast<double>(cycles) / (task_clock_ms * 1e6);
}

JsonValue::Object CounterDelta::to_json() const {
  JsonValue::Object obj;
  obj["wall_ms"] = JsonValue(wall_ms);
  obj["cpu_ms"] = JsonValue(cpu_ms);
  if (!counters_valid) return obj;
  obj["cycles"] = JsonValue(cycles);
  obj["instructions"] = JsonValue(instructions);
  obj["ipc"] = JsonValue(ipc());
  obj["ghz"] = JsonValue(ghz());
  obj["task_clock_ms"] = JsonValue(task_clock_ms);
  if (branch_valid) obj["branch_misses"] = JsonValue(branch_misses);
  if (cache_valid) {
    obj["cache_references"] = JsonValue(cache_references);
    obj["cache_misses"] = JsonValue(cache_misses);
    obj["cache_miss_rate"] = JsonValue(cache_miss_rate());
  }
  return obj;
}

// ---------------------------------------------------------------------------
// CounterReader.

struct CounterReader::Impl {
  std::uint64_t start_us = 0;
  double cpu_start_ms = 0.0;
  bool counters = false;
#if defined(AROPUF_HAVE_PERF_EVENT)
  int fds[kNumPerfSpecs] = {-1, -1, -1, -1, -1, -1};
  double start_vals[kNumPerfSpecs] = {0, 0, 0, 0, 0, 0};
#endif
};

CounterReader::CounterReader() : impl_(new Impl) {
  impl_->start_us = steady_now_us();
  impl_->cpu_start_ms = process_cpu_ms();
#if defined(AROPUF_HAVE_PERF_EVENT)
  if (prof_status().mode == ProfMode::kCounters) {
    for (int i = 0; i < kNumPerfSpecs; ++i) impl_->fds[i] = open_perf_counter(kPerfSpecs[i]);
    impl_->counters = impl_->fds[kIdxCycles] >= 0 && impl_->fds[kIdxInstructions] >= 0 &&
                      impl_->fds[kIdxTaskClock] >= 0;
    if (impl_->counters) {
      for (int i = 0; i < kNumPerfSpecs; ++i) {
        impl_->start_vals[i] = read_scaled_counter(impl_->fds[i]);
      }
    }
  }
#endif
}

CounterReader::~CounterReader() {
#if defined(AROPUF_HAVE_PERF_EVENT)
  for (const int fd : impl_->fds) {
    if (fd >= 0) ::close(fd);
  }
#endif
}

bool CounterReader::counters_active() const noexcept { return impl_->counters; }

CounterDelta CounterReader::sample() const {
  CounterDelta d;
  d.wall_ms = static_cast<double>(steady_now_us() - impl_->start_us) / 1000.0;
  d.cpu_ms = process_cpu_ms() - impl_->cpu_start_ms;
  if (d.cpu_ms < 0.0) d.cpu_ms = 0.0;
#if defined(AROPUF_HAVE_PERF_EVENT)
  if (impl_->counters) {
    double deltas[kNumPerfSpecs];
    for (int i = 0; i < kNumPerfSpecs; ++i) {
      deltas[i] = impl_->fds[i] >= 0
                      ? read_scaled_counter(impl_->fds[i]) - impl_->start_vals[i]
                      : -1.0;
      if (deltas[i] < 0.0 && impl_->fds[i] >= 0) deltas[i] = 0.0;
    }
    const auto as_u64 = [](double v) {
      return v > 0.0 ? static_cast<std::uint64_t>(v) : std::uint64_t{0};
    };
    d.counters_valid = true;
    d.cycles = as_u64(deltas[kIdxCycles]);
    d.instructions = as_u64(deltas[kIdxInstructions]);
    d.task_clock_ms = deltas[kIdxTaskClock] > 0.0 ? deltas[kIdxTaskClock] / 1e6 : 0.0;
    d.branch_valid = impl_->fds[kIdxBranchMisses] >= 0;
    d.branch_misses = as_u64(deltas[kIdxBranchMisses]);
    d.cache_valid = impl_->fds[kIdxCacheRefs] >= 0 && impl_->fds[kIdxCacheMisses] >= 0;
    d.cache_references = as_u64(deltas[kIdxCacheRefs]);
    d.cache_misses = as_u64(deltas[kIdxCacheMisses]);
  }
#endif
  return d;
}

// ---------------------------------------------------------------------------
// Metrics + scope.

void record_counter_metrics(const CounterDelta& delta) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("prof.scopes").add(1);
  reg.histogram("prof.scope_wall_ms", 0.0, 1000.0, 50).record(delta.wall_ms);
  if (!delta.counters_valid) return;
  reg.counter("prof.cycles").add(delta.cycles);
  reg.counter("prof.instructions").add(delta.instructions);
  reg.gauge("prof.ipc").set(delta.ipc());
  reg.gauge("prof.ghz").set(delta.ghz());
  if (delta.branch_valid) reg.counter("prof.branch_misses").add(delta.branch_misses);
  if (delta.cache_valid) {
    reg.counter("prof.cache_references").add(delta.cache_references);
    reg.counter("prof.cache_misses").add(delta.cache_misses);
    reg.gauge("prof.cache_miss_rate").set(delta.cache_miss_rate());
  }
}

CounterScope::CounterScope(std::string name)
    : name_(std::move(name)), start_us_(steady_now_us()) {}

CounterScope::~CounterScope() {
  const CounterDelta d = reader_.sample();
  record_counter_metrics(d);
  if (trace_enabled()) trace_complete(name_, "prof", start_us_, d.to_json());
}

CounterDelta CounterScope::sample() const { return reader_.sample(); }

// ---------------------------------------------------------------------------
// ResourceSampler.

struct ResourceSampler::Impl {
  Options opts;
  std::ofstream out;
  std::thread thread;
  std::mutex mutex;
  std::condition_variable cv;
  bool stopping = false;
  bool stopped = false;
  std::atomic<std::size_t> samples{0};
  std::atomic<bool> ok{true};
  double epoch_unix_ms = 0.0;
  double prev_wall_ms = 0.0;
  double prev_cpu_ms = 0.0;

  void take_sample() {
    // Wall time derived from the steady clock so validator monotonicity
    // holds even across NTP steps.
    const double wall_ms = static_cast<double>(steady_now_us()) / 1000.0;
    double user_ms = 0.0;
    double sys_ms = 0.0;
    split_cpu_ms(user_ms, sys_ms);
    const double cpu_ms = user_ms + sys_ms;
    const long rss = current_rss_kib();
    // ru_maxrss can lag /proc/self/statm by a few pages on some kernels
    // (container memory accounting); clamp so the timeline invariant
    // peak >= current holds by construction.
    const long peak = std::max(peak_rss_kib(), rss);
    const int threads = thread_count();
    const double dt = wall_ms - prev_wall_ms;
    const double cpu_pct = dt > 0.0 ? 100.0 * (cpu_ms - prev_cpu_ms) / dt : 0.0;
    prev_wall_ms = wall_ms;
    prev_cpu_ms = cpu_ms;

    MetricsRegistry& reg = MetricsRegistry::global();
    reg.gauge("proc.rss_kib").set(static_cast<double>(rss));
    reg.gauge("proc.peak_rss_kib").set(static_cast<double>(peak));
    reg.gauge("proc.cpu_pct").set(cpu_pct > 0.0 ? cpu_pct : 0.0);

    if (opts.chrome_counters && trace_enabled()) {
      trace_counter("resource.rss_mib", {{"rss_mib", static_cast<double>(rss) / 1024.0}});
      trace_counter("resource.cpu_ms", {{"user", user_ms}, {"sys", sys_ms}});
      trace_counter("resource.threads", {{"threads", static_cast<double>(threads)}});
    }

    if (out.is_open()) {
      JsonValue::Object line;
      line["ts_unix_ms"] = JsonValue(epoch_unix_ms + wall_ms);
      line["rss_kib"] = JsonValue(static_cast<double>(rss));
      line["peak_rss_kib"] = JsonValue(static_cast<double>(peak));
      line["cpu_user_ms"] = JsonValue(user_ms);
      line["cpu_sys_ms"] = JsonValue(sys_ms);
      line["cpu_pct"] = JsonValue(cpu_pct > 0.0 ? cpu_pct : 0.0);
      line["threads"] = JsonValue(threads);
      out << JsonValue(std::move(line)).dump(/*indent=*/0) << '\n';
      out.flush();
      if (!out) ok.store(false, std::memory_order_relaxed);
    }
    samples.fetch_add(1, std::memory_order_relaxed);
  }

  void run() {
    // The constructor already took the immediate first sample, so the
    // thread sleeps before each of its own.
    std::unique_lock<std::mutex> lock(mutex);
    while (!stopping) {
      if (cv.wait_for(lock, std::chrono::duration<double, std::milli>(opts.interval_ms),
                      [this] { return stopping; })) {
        break;
      }
      lock.unlock();
      take_sample();
      lock.lock();
    }
  }
};

ResourceSampler::ResourceSampler(Options opts) : impl_(new Impl) {
  impl_->opts = std::move(opts);
  if (impl_->opts.interval_ms < 10.0) impl_->opts.interval_ms = 10.0;
  impl_->epoch_unix_ms = trace_epoch_unix_ms();
  if (!impl_->opts.jsonl_path.empty()) {
    // Timelines are routinely pointed into a run's output directory before
    // the driver has created it (the sampler starts at process startup, the
    // driver makes its --out dir later); create missing parents instead of
    // latching a spurious failure.  Errors fall through to the open below.
    const std::filesystem::path parent =
        std::filesystem::path(impl_->opts.jsonl_path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);
    }
    impl_->out.open(impl_->opts.jsonl_path, std::ios::trunc);
    if (!impl_->out.is_open()) {
      ARO_LOG_ERROR("prof", "cannot open resource timeline",
                    {"path", JsonValue(impl_->opts.jsonl_path)});
      impl_->ok.store(false, std::memory_order_relaxed);
    }
  }
  // Immediate first sample on the caller's thread: even a run shorter than
  // one interval gets a start-state line (plus stop()'s end-state line).
  impl_->take_sample();
  impl_->thread = std::thread([this] { impl_->run(); });
}

ResourceSampler::~ResourceSampler() { stop(); }

void ResourceSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->stopped) return;
    impl_->stopped = true;
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  if (impl_->thread.joinable()) impl_->thread.join();
  // Final sample so short runs still record an end-state line.
  impl_->take_sample();
  if (impl_->out.is_open()) impl_->out.close();
}

std::size_t ResourceSampler::samples() const noexcept {
  return impl_->samples.load(std::memory_order_relaxed);
}

bool ResourceSampler::ok() const noexcept { return impl_->ok.load(std::memory_order_relaxed); }

const std::string& ResourceSampler::path() const noexcept { return impl_->opts.jsonl_path; }

double ResourceSampler::interval_ms() const noexcept { return impl_->opts.interval_ms; }

// ---------------------------------------------------------------------------
// Process profile.

namespace {

struct ProcessProfile {
  std::mutex mutex;
  bool started = false;
  bool stopped = false;
  bool frozen_valid = false;
  CounterDelta frozen;
  std::unique_ptr<CounterReader> reader;
  std::unique_ptr<ResourceSampler> sampler;

  // Destroys the sampler thread at static destruction if a driver forgot
  // to call stop_process_profile().
  ~ProcessProfile() { sampler.reset(); }
};

ProcessProfile& process_profile() {
  static ProcessProfile p;
  return p;
}

}  // namespace

namespace {

/// "%p" in the AROPUF_PROF_RESOURCE path expands to the pid so multi-process
/// runs (aropuf_shard workers inherit the env) don't clobber one timeline.
std::string expand_pid_placeholder(std::string path) {
  const std::size_t pos = path.find("%p");
  if (pos == std::string::npos) return path;
#if !defined(_WIN32)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return path.replace(pos, 2, std::to_string(pid));
}

}  // namespace

void start_process_profile() {
  const ProfStatus& status = prof_status();
  const char* resource_path = cli::env_value("AROPUF_PROF_RESOURCE");
  if (status.mode == ProfMode::kOff && resource_path == nullptr) return;

  ProcessProfile& p = process_profile();
  std::lock_guard<std::mutex> lock(p.mutex);
  if (p.started) return;
  p.started = true;
  p.reader = std::make_unique<CounterReader>();
  ResourceSampler::Options opts;
  if (resource_path != nullptr) opts.jsonl_path = expand_pid_placeholder(resource_path);
  if (const char* interval = cli::env_value("AROPUF_PROF_INTERVAL_MS")) {
    const double ms = std::strtod(interval, nullptr);
    if (ms > 0.0) opts.interval_ms = ms;
  }
  p.sampler = std::make_unique<ResourceSampler>(std::move(opts));
  ARO_LOG_INFO("prof", "process profile started",
               {"mode", JsonValue(prof_mode_name(status.mode))},
               {"interval_ms", JsonValue(p.sampler->interval_ms())},
               {"resource_path", JsonValue(p.sampler->path())});
}

bool stop_process_profile() {
  ProcessProfile& p = process_profile();
  std::lock_guard<std::mutex> lock(p.mutex);
  if (!p.started || p.stopped) return true;
  p.stopped = true;
  if (p.reader) {
    p.frozen = p.reader->sample();
    p.frozen_valid = true;
  }
  bool ok = true;
  if (p.sampler) {
    p.sampler->stop();
    ok = p.sampler->ok();
    if (!ok) {
      ARO_LOG_ERROR("prof", "resource timeline write failed",
                    {"path", JsonValue(p.sampler->path())});
    }
  }
  return ok;
}

JsonValue profile_manifest_section() {
  const ProfStatus& status = prof_status();
  JsonValue::Object profile;
  profile["mode"] = JsonValue(prof_mode_name(status.mode));
  profile["fallback_reason"] = JsonValue(status.fallback_reason);
  profile["peak_rss_kib"] = JsonValue(static_cast<double>(peak_rss_kib()));

  ProcessProfile& p = process_profile();
  std::lock_guard<std::mutex> lock(p.mutex);
  if (p.started) {
    const CounterDelta totals = p.frozen_valid ? p.frozen
                                : p.reader     ? p.reader->sample()
                                               : CounterDelta{};
    profile["counters"] = JsonValue(totals.to_json());
    if (p.sampler) {
      JsonValue::Object sampler;
      sampler["interval_ms"] = JsonValue(p.sampler->interval_ms());
      sampler["samples"] = JsonValue(static_cast<std::uint64_t>(p.sampler->samples()));
      sampler["path"] = JsonValue(p.sampler->path());
      sampler["ok"] = JsonValue(p.sampler->ok());
      profile["sampler"] = JsonValue(std::move(sampler));
    }
  }
  return JsonValue(std::move(profile));
}

void prof_reset_for_test() {
  {
    ProcessProfile& p = process_profile();
    std::lock_guard<std::mutex> lock(p.mutex);
    p.sampler.reset();
    p.reader.reset();
    p.started = false;
    p.stopped = false;
    p.frozen_valid = false;
  }
  ProfStatusCache& c = status_cache();
  std::lock_guard<std::mutex> lock(c.mutex);
  c.resolved = false;
}

}  // namespace aropuf::telemetry
