// Shard-manifest aggregation: N per-process run manifests → one merged run.
//
// The sharded-run orchestrator (tools/aropuf_shard.cpp) splits a chip
// population into seed-range shards, each worker writes an ordinary run
// manifest (telemetry/manifest.hpp) extended with a "shard" descriptor and a
// "results" payload, and this module merges those manifests exactly:
//
//  * counters      — summed (exact: counts are integers);
//  * gauges        — resolved by documented policy ("max" by default, "last"
//                    for names ending ".last") with every shard's reading
//                    retained under "per_shard" — never averaged;
//  * histograms    — RunningStats rebuilt from each shard's serialized
//                    moments (count/mean/m2/min/max round-trip exactly) and
//                    merged with RunningStats::merge in shard-index order;
//                    bin counts summed;
//  * stages        — wall/CPU time rolled up per stage name (sum + max);
//  * results       — the study payload, merged *bit-identically*:
//                    - sample series (per-chip doubles) concatenate in global
//                      chip order and are re-reduced serially, so the merged
//                      RunningStats equals a single-process reduction;
//                    - tallies (integer sufficient statistics over pair
//                      spaces) are summed, which is exact by construction.
//
// Merging is *incremental*: AggregateBuilder::add() folds one shard manifest
// at a time, in any arrival order, and finalize() emits the merged document.
// Sample-series values are re-reduced strictly in global chip order — the
// builder keeps a per-series cursor and buffers only the out-of-order window
// (pieces that arrived ahead of the cursor), so the floating-point operation
// sequence is identical for every arrival order and identical to a
// single-process reduction.  Peak raw-series residency is therefore
// O(largest shard + out-of-order window), not O(population); with
// RawSeriesPolicy::kDropAfterCheck the reduced values are freed immediately
// and the aggregate omits them (marked "raw_series": "dropped").
//
// Merging is deterministic and independent of the order manifests are given
// in.  Provenance mismatches across shards (config echo, git sha, build type,
// kernel backend, schema version, run name) are detected and reported as
// structured AggregateConflicts, embedded in the merged document under
// "conflicts".
//
// The merged document uses its own schema ("aropuf-aggregate-manifest") so
// scripts/validate_manifest.py --aggregate can validate it independently of
// per-shard manifests.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace aropuf::telemetry {

inline constexpr const char* kAggregateSchema = "aropuf-aggregate-manifest";
/// v2: adds the top-level "raw_series" marker ("kept" | "dropped") and, under
/// the kKeep policy, the concatenated per-chip values inside each merged
/// sample series.  v1 documents had neither.
inline constexpr int kAggregateSchemaVersion = 2;

/// One loaded shard manifest plus the shard coordinates it self-reports.
struct ShardManifest {
  std::string path;          ///< file it was loaded from ("<memory>" for tests)
  int shard_index = 0;       ///< doc["shard"]["index"]
  int shard_count = 1;       ///< doc["shard"]["count"]
  std::int64_t chip_lo = 0;  ///< first global chip index owned by this shard
  std::int64_t chip_hi = 0;  ///< one past the last owned chip
  JsonValue doc;             ///< the full manifest document
};

/// Parses and structurally validates one shard manifest file.  Throws
/// std::runtime_error with a path-prefixed message on unreadable files,
/// malformed/truncated JSON, wrong schema, or a missing "shard" descriptor.
[[nodiscard]] ShardManifest load_shard_manifest(const std::string& path);

/// One decoded sample-series slice with its values out of band.  The binary
/// transport (telemetry/binfmt.hpp) produces these directly; the JSON path
/// builds them by pulling the embedded value arrays out of the document, so
/// the fold downstream of this struct is format-agnostic — and bit-identical
/// across formats, because JSON round-trips doubles exactly.
struct SeriesChunk {
  std::string name;
  std::int64_t offset = 0;
  std::int64_t total = 0;
  double hist_lo = 0.0;
  double hist_hi = 1.0;
  std::int64_t hist_bins = 0;
  std::vector<double> values;
};

/// A shard manifest plus its sample values decoded out of band: the manifest
/// doc's samples entries carry headers only.
struct DecodedShard {
  ShardManifest manifest;
  std::vector<SeriesChunk> chunks;
};

/// Loads a shard manifest in either transport format, sniffing the binfmt
/// magic: binary containers decode without materializing value arrays as
/// JSON; JSON documents have their embedded values extracted.  Throws
/// std::runtime_error (or the more specific BinfmtError) with a
/// path-prefixed message on any defect.
[[nodiscard]] DecodedShard load_shard_input(const std::string& path);

/// Same decode for container bytes already in memory — the fleet
/// coordinator's path for RESULT frames arriving over TCP (net/coordinator),
/// which fold without ever touching disk.  `origin` labels error messages
/// and the manifest provenance ("tcp://worker-3", "<memory>", ...).  Both
/// load_shard_input and this function funnel into one decoder, so a network
/// result and a file re-read of the same bytes produce identical
/// DecodedShards — the fleet bit-identity guarantee rests on that.
[[nodiscard]] DecodedShard decode_shard_input(std::string bytes, const std::string& origin);

/// Wraps an in-memory manifest document (tests, the in-process worker path).
/// Performs the same structural validation as load_shard_manifest.
[[nodiscard]] ShardManifest wrap_shard_manifest(JsonValue doc,
                                                const std::string& path = "<memory>");

/// Non-throwing validity probe used by the orchestrator's --resume mode: true
/// when `path` holds a well-formed shard manifest (either transport format)
/// for shard `expect_index` of `expect_count` with a matching run name.  On
/// failure, `*why` (when given) receives a one-line reason.
[[nodiscard]] bool shard_manifest_is_valid(const std::string& path, const std::string& expect_run,
                                           int expect_index, int expect_count,
                                           std::string* why = nullptr);

/// One provenance mismatch across shards: which field disagreed and each
/// shard's serialized value.
struct AggregateConflict {
  std::string field;                   ///< e.g. "git_sha", "config", "kernel_backend"
  std::map<int, std::string> values;   ///< shard index -> value (compact JSON)
};

struct AggregateResult {
  JsonValue manifest;                       ///< the merged aggregate document
  std::vector<AggregateConflict> conflicts; ///< also embedded under "conflicts"
};

/// Gauge resolution policy for a metric name (see Gauge docs in metrics.hpp).
enum class GaugePolicy { kMax, kLast };
[[nodiscard]] GaugePolicy gauge_merge_policy(const std::string& name);

/// What happens to raw per-chip sample values after the fold has reduced
/// them into RunningStats/Histogram form.
enum class RawSeriesPolicy {
  kKeep,            ///< concatenated values are embedded in the aggregate ("raw_series": "kept")
  kDropAfterCheck,  ///< values are freed once reduced; the aggregate omits them ("raw_series": "dropped")
};

/// Incremental shard-manifest fold.  add() accepts shards in any arrival
/// order; finalize() emits the aggregate.  The result is bit-identical to
/// aggregate_shards() on the same set for every arrival order.
///
/// add() is transactional: it fully validates the incoming shard (structure,
/// schema, duplicate index, shard-count and series-shape agreement with the
/// shards already folded) before mutating any state, and throws
/// std::runtime_error prefixed with the offending shard's path on failure —
/// prior folds stay intact, so an orchestrator can retry or replace the bad
/// shard and keep going.  Cross-shard completeness (chip ranges tiling
/// [0, chips), all declared shards present) can only be judged once the set
/// is closed and is checked by finalize().
class AggregateBuilder {
 public:
  explicit AggregateBuilder(RawSeriesPolicy policy = RawSeriesPolicy::kKeep);
  ~AggregateBuilder();
  AggregateBuilder(AggregateBuilder&&) noexcept;
  AggregateBuilder& operator=(AggregateBuilder&&) noexcept;

  /// Folds one shard.  Raw sample values at the per-series cursor are reduced
  /// immediately (and freed under kDropAfterCheck); values that arrived ahead
  /// of the cursor wait in the out-of-order window until the gap fills.
  void add(ShardManifest&& shard);

  /// Same fold for a shard whose sample values arrived out of band (the
  /// binary transport path): no JSON value arrays exist at any point.
  void add(DecodedShard&& shard);

  /// Closes the set, verifies completeness, and emits the aggregate document.
  /// Throws std::runtime_error on an empty/incomplete set; std::logic_error
  /// if called twice.
  [[nodiscard]] AggregateResult finalize();

  [[nodiscard]] RawSeriesPolicy policy() const;
  [[nodiscard]] int shards_added() const;
  /// Declared shard count, from the first shard added (0 before that).
  [[nodiscard]] int expected_shards() const;
  /// Raw sample values currently parked in the out-of-order window.
  [[nodiscard]] std::size_t buffered_values() const;
  /// High-water mark of the window — the bounded-memory claim, measurable.
  [[nodiscard]] std::size_t peak_buffered_values() const;
  /// Raw sample values reduced into statistics so far.
  [[nodiscard]] std::size_t reduced_values() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Merges shard manifests into one aggregate document — a thin wrapper that
/// feeds every shard through an AggregateBuilder.  Throws std::runtime_error
/// when the set is structurally unmergeable: empty input, duplicate shard
/// indices, disagreeing shard counts, or chip ranges that do not exactly tile
/// [0, chips).  Provenance disagreements are NOT exceptions: they come back
/// as conflicts (callers decide whether to fail the run).
[[nodiscard]] AggregateResult aggregate_shards(std::vector<ShardManifest> shards,
                                               RawSeriesPolicy policy = RawSeriesPolicy::kKeep);

/// Serializes the merged document to `path` (pretty-printed).  Returns false
/// and logs at error level when the file cannot be written.
bool write_aggregate_manifest(const std::string& path, const JsonValue& manifest);

}  // namespace aropuf::telemetry
