// Shard-manifest aggregation: N per-process run manifests → one merged run.
//
// The sharded-run orchestrator (tools/aropuf_shard.cpp) splits a chip
// population into seed-range shards, each worker writes an ordinary run
// manifest (telemetry/manifest.hpp) extended with a "shard" descriptor and a
// "results" payload, and this module merges those manifests exactly:
//
//  * counters      — summed (exact: counts are integers);
//  * gauges        — resolved by documented policy ("max" by default, "last"
//                    for names ending ".last") with every shard's reading
//                    retained under "per_shard" — never averaged;
//  * histograms    — RunningStats rebuilt from each shard's serialized
//                    moments (count/mean/m2/min/max round-trip exactly) and
//                    merged with RunningStats::merge in shard-index order;
//                    bin counts summed;
//  * stages        — wall/CPU time rolled up per stage name (sum + max);
//  * results       — the study payload, merged *bit-identically*:
//                    - sample series (per-chip doubles) concatenate in global
//                      chip order and are re-reduced serially, so the merged
//                      RunningStats equals a single-process reduction;
//                    - tallies (integer sufficient statistics over pair
//                      spaces) are summed, which is exact by construction.
//
// Merging is deterministic and independent of the order manifests are given
// in: shards are sorted by their self-reported shard index first.  Provenance
// mismatches across shards (config echo, git sha, build type, kernel backend,
// schema version, run name) are detected and reported as structured
// AggregateConflicts, embedded in the merged document under "conflicts".
//
// The merged document uses its own schema ("aropuf-aggregate-manifest") so
// scripts/validate_manifest.py --aggregate can validate it independently of
// per-shard manifests.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace aropuf::telemetry {

inline constexpr const char* kAggregateSchema = "aropuf-aggregate-manifest";
inline constexpr int kAggregateSchemaVersion = 1;

/// One loaded shard manifest plus the shard coordinates it self-reports.
struct ShardManifest {
  std::string path;          ///< file it was loaded from ("<memory>" for tests)
  int shard_index = 0;       ///< doc["shard"]["index"]
  int shard_count = 1;       ///< doc["shard"]["count"]
  std::int64_t chip_lo = 0;  ///< first global chip index owned by this shard
  std::int64_t chip_hi = 0;  ///< one past the last owned chip
  JsonValue doc;             ///< the full manifest document
};

/// Parses and structurally validates one shard manifest file.  Throws
/// std::runtime_error with a path-prefixed message on unreadable files,
/// malformed/truncated JSON, wrong schema, or a missing "shard" descriptor.
[[nodiscard]] ShardManifest load_shard_manifest(const std::string& path);

/// Wraps an in-memory manifest document (tests, the in-process worker path).
/// Performs the same structural validation as load_shard_manifest.
[[nodiscard]] ShardManifest wrap_shard_manifest(JsonValue doc,
                                                const std::string& path = "<memory>");

/// Non-throwing validity probe used by the orchestrator's --resume mode: true
/// when `path` holds a well-formed shard manifest for shard `expect_index` of
/// `expect_count` with a matching run name.  On failure, `*why` (when given)
/// receives a one-line reason.
[[nodiscard]] bool shard_manifest_is_valid(const std::string& path, const std::string& expect_run,
                                           int expect_index, int expect_count,
                                           std::string* why = nullptr);

/// One provenance mismatch across shards: which field disagreed and each
/// shard's serialized value.
struct AggregateConflict {
  std::string field;                   ///< e.g. "git_sha", "config", "kernel_backend"
  std::map<int, std::string> values;   ///< shard index -> value (compact JSON)
};

struct AggregateResult {
  JsonValue manifest;                       ///< the merged aggregate document
  std::vector<AggregateConflict> conflicts; ///< also embedded under "conflicts"
};

/// Gauge resolution policy for a metric name (see Gauge docs in metrics.hpp).
enum class GaugePolicy { kMax, kLast };
[[nodiscard]] GaugePolicy gauge_merge_policy(const std::string& name);

/// Merges shard manifests into one aggregate document.  Throws
/// std::runtime_error when the set is structurally unmergeable: empty input,
/// duplicate shard indices, disagreeing shard counts, or chip ranges that do
/// not exactly tile [0, chips).  Provenance disagreements are NOT exceptions:
/// they come back as conflicts (callers decide whether to fail the run).
[[nodiscard]] AggregateResult aggregate_shards(std::vector<ShardManifest> shards);

/// Serializes the merged document to `path` (pretty-printed).  Returns false
/// and logs at error level when the file cannot be written.
bool write_aggregate_manifest(const std::string& path, const JsonValue& manifest);

}  // namespace aropuf::telemetry
