#include "metrics/uniqueness.hpp"

#include "common/check.hpp"
#include "sim/parallel.hpp"

namespace aropuf {

UniquenessResult compute_uniqueness(std::span<const BitVector> responses) {
  ARO_REQUIRE(responses.size() >= 2, "uniqueness needs at least two chips");
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ARO_REQUIRE(responses[i].size() == responses[0].size(),
                "all responses must have equal length");
  }
  // Row i holds the HDs against all j > i.  Rows shrink with i, which the
  // executor's chunked dynamic scheduling load-balances; the accumulators are
  // then filled serially in (i, j) order so mean/variance stay bit-identical
  // at any thread count.
  const auto rows = parallel_map_chips(responses.size(), [&](std::size_t i) {
    std::vector<double> row;
    row.reserve(responses.size() - i - 1);
    for (std::size_t j = i + 1; j < responses.size(); ++j) {
      row.push_back(fractional_hamming_distance(responses[i], responses[j]));
    }
    return row;
  });
  UniquenessResult result;
  for (const auto& row : rows) {
    for (const double hd : row) {
      result.stats.add(hd);
      result.histogram.add(hd);
    }
  }
  return result;
}

}  // namespace aropuf
