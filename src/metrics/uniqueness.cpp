#include "metrics/uniqueness.hpp"

#include "common/check.hpp"

namespace aropuf {

UniquenessResult compute_uniqueness(std::span<const BitVector> responses) {
  ARO_REQUIRE(responses.size() >= 2, "uniqueness needs at least two chips");
  UniquenessResult result;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ARO_REQUIRE(responses[i].size() == responses[0].size(),
                "all responses must have equal length");
    for (std::size_t j = i + 1; j < responses.size(); ++j) {
      const double hd = fractional_hamming_distance(responses[i], responses[j]);
      result.stats.add(hd);
      result.histogram.add(hd);
    }
  }
  return result;
}

}  // namespace aropuf
