#include "metrics/uniqueness.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "sim/parallel.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace aropuf {

UniquenessResult compute_uniqueness(std::span<const BitVector> responses) {
  const std::size_t n = responses.size();
  ARO_REQUIRE(n >= 2, "uniqueness needs at least two chips");
  for (std::size_t i = 0; i < n; ++i) {
    ARO_REQUIRE(responses[i].size() == responses[0].size(),
                "all responses must have equal length");
  }
  // The pair space is flattened so every parallel index does exactly one HD:
  // row-based splitting made the engine's chunks shrink with i (row i has
  // n-1-i pairs), leaving the last chunks nearly empty.  Pair k maps back to
  // (i, j) through the row-offset table; k-order equals (i, j) lexicographic
  // order, so the serial reduction below accumulates in exactly the order the
  // old row loop did — bit-identical at any thread count, and to history.
  const std::size_t pairs = n * (n - 1) / 2;
  const telemetry::TraceScope span("compute_uniqueness", "metrics",
                                   {{"chips", JsonValue(static_cast<std::uint64_t>(n))},
                                    {"pairs", JsonValue(static_cast<std::uint64_t>(pairs))}});
  telemetry::MetricsRegistry::global().counter("metrics.pair_hds").add(pairs);
  std::vector<std::size_t> row_offset(n);  // index of row i's first pair
  for (std::size_t i = 0, k = 0; i < n; ++i) {
    row_offset[i] = k;
    k += n - 1 - i;
  }
  const std::vector<double> hds = parallel_map_chips(pairs, [&](std::size_t k) {
    const auto row = static_cast<std::size_t>(
        std::distance(row_offset.begin(),
                      std::upper_bound(row_offset.begin(), row_offset.end(), k)) -
        1);
    const std::size_t col = row + 1 + (k - row_offset[row]);
    return fractional_hamming_distance(responses[row], responses[col]);
  });
  UniquenessResult result;
  for (const double hd : hds) {
    result.stats.add(hd);
    result.histogram.add(hd);
  }
  return result;
}

}  // namespace aropuf
