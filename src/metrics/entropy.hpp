// Min-entropy estimation for PUF responses (NIST SP 800-90B-lite).
//
// Key material must be budgeted against min-entropy, not Shannon entropy: a
// fuzzy extractor's output length is bounded by H_min(response) minus the
// helper-data leakage.  Three standard estimators, each conservative in a
// different failure mode:
//
//  * most-common-value (MCV) — per-bit-position, catches biased bits;
//  * collision — catches low-diversity sources via birthday statistics;
//  * Markov (order-1) — catches serial dependence between adjacent bits.
//
// Estimates are per-bit (in [0, 1]); multiply by the response length for a
// total budget.  The final estimate takes the minimum of the three.
#pragma once

#include <span>

#include "common/bitvector.hpp"

namespace aropuf {

/// Per-bit MCV min-entropy over bit positions: for each position, the
/// across-chip bias p_max; H = mean over positions of -log2(p_max).
/// Includes the SP 800-90B upper-confidence adjustment on p_max.
[[nodiscard]] double mcv_min_entropy(std::span<const BitVector> responses);

/// Collision-based estimate over w-bit words at matching positions across
/// chips: collision rate q -> p_max <= sqrt(q) -> per-bit entropy.  The
/// sqrt bound is a true lower bound on H_min but is conservative by up to a
/// factor 2 (an ideal source scores 0.5/bit, not 1.0); it exists to catch
/// low-diversity failures (cloned or heavily correlated chips), which drive
/// it toward 0.
[[nodiscard]] double collision_min_entropy(std::span<const BitVector> responses, int word_bits = 8);

/// Order-1 Markov estimate on each response (serial dependence): per-bit
/// min-entropy of the most probable transition path.
[[nodiscard]] double markov_min_entropy(std::span<const BitVector> responses);

/// min(MCV, collision, Markov) — the conservative budget figure.
[[nodiscard]] double min_entropy_estimate(std::span<const BitVector> responses);

}  // namespace aropuf
