#include "metrics/uniformity.hpp"

#include "common/check.hpp"
#include "sim/parallel.hpp"

namespace aropuf {

double uniformity(const BitVector& response) {
  ARO_REQUIRE(!response.empty(), "uniformity of an empty response");
  return response.ones_fraction();
}

RunningStats uniformity_stats(std::span<const BitVector> responses) {
  ARO_REQUIRE(!responses.empty(), "uniformity stats need at least one response");
  RunningStats stats;
  for (const auto& r : responses) stats.add(uniformity(r));
  return stats;
}

std::vector<double> bit_aliasing(std::span<const BitVector> responses) {
  ARO_REQUIRE(!responses.empty(), "bit aliasing needs at least one response");
  for (const auto& r : responses) {
    ARO_REQUIRE(r.size() == responses[0].size(), "response length mismatch");
  }
  // Bit positions are independent, so the chip loop parallelizes over them.
  // Each position's ones count is an exact integer (chip counts are far below
  // 2^53), so the result is bit-identical to the serial version at any
  // thread count.
  std::vector<double> ones(responses[0].size(), 0.0);
  parallel_for_chips(ones.size(), [&](std::size_t i) {
    std::size_t count = 0;
    for (const auto& r : responses) {
      if (r.get(i)) ++count;
    }
    ones[i] = static_cast<double>(count) / static_cast<double>(responses.size());
  });
  return ones;
}

RunningStats bit_aliasing_stats(std::span<const BitVector> responses) {
  RunningStats stats;
  for (const double a : bit_aliasing(responses)) stats.add(a);
  return stats;
}

double autocorrelation(const BitVector& response, std::size_t lag) {
  ARO_REQUIRE(lag >= 1 && lag < response.size(), "lag must be in [1, size)");
  const std::size_t n = response.size() - lag;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = response.get(i) ? 1.0 : -1.0;
    const double b = response.get(i + lag) ? 1.0 : -1.0;
    sum += a * b;
  }
  return sum / static_cast<double>(n);
}

}  // namespace aropuf
