#include "metrics/uniformity.hpp"

#include "common/check.hpp"

namespace aropuf {

double uniformity(const BitVector& response) {
  ARO_REQUIRE(!response.empty(), "uniformity of an empty response");
  return response.ones_fraction();
}

RunningStats uniformity_stats(std::span<const BitVector> responses) {
  ARO_REQUIRE(!responses.empty(), "uniformity stats need at least one response");
  RunningStats stats;
  for (const auto& r : responses) stats.add(uniformity(r));
  return stats;
}

std::vector<double> bit_aliasing(std::span<const BitVector> responses) {
  ARO_REQUIRE(!responses.empty(), "bit aliasing needs at least one response");
  std::vector<double> ones(responses[0].size(), 0.0);
  for (const auto& r : responses) {
    ARO_REQUIRE(r.size() == responses[0].size(), "response length mismatch");
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (r.get(i)) ones[i] += 1.0;
    }
  }
  for (auto& o : ones) o /= static_cast<double>(responses.size());
  return ones;
}

RunningStats bit_aliasing_stats(std::span<const BitVector> responses) {
  RunningStats stats;
  for (const double a : bit_aliasing(responses)) stats.add(a);
  return stats;
}

double autocorrelation(const BitVector& response, std::size_t lag) {
  ARO_REQUIRE(lag >= 1 && lag < response.size(), "lag must be in [1, size)");
  const std::size_t n = response.size() - lag;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = response.get(i) ? 1.0 : -1.0;
    const double b = response.get(i + lag) ? 1.0 : -1.0;
    sum += a * b;
  }
  return sum / static_cast<double>(n);
}

}  // namespace aropuf
