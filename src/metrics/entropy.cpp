#include "metrics/entropy.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "metrics/uniformity.hpp"
#include "sim/parallel.hpp"

namespace aropuf {

namespace {

/// SP 800-90B style upper confidence bound on an observed proportion
/// (normal approximation at 99 %): p_u = p + 2.576 * sqrt(p(1-p)/n), capped.
double upper_bound(double p, std::size_t n) {
  const double adj = 2.576 * std::sqrt(p * (1.0 - p) / static_cast<double>(n));
  return std::min(1.0, p + adj);
}

}  // namespace

double mcv_min_entropy(std::span<const BitVector> responses) {
  ARO_REQUIRE(responses.size() >= 2, "MCV estimate needs a population");
  const auto aliasing = bit_aliasing(responses);
  double total = 0.0;
  for (const double p1 : aliasing) {
    const double p_max = std::max(p1, 1.0 - p1);
    const double p_u = upper_bound(p_max, responses.size());
    total += -std::log2(std::max(p_u, 1e-12));
  }
  return total / static_cast<double>(aliasing.size());
}

double collision_min_entropy(std::span<const BitVector> responses, int word_bits) {
  ARO_REQUIRE(!responses.empty(), "collision estimate needs responses");
  ARO_REQUIRE(word_bits >= 1 && word_bits <= 24, "word size must be in [1, 24]");
  // Count collisions between same-position words across chips: a biased or
  // correlated source collides more often than 2^-w.
  const std::size_t word_count = responses[0].size() / static_cast<std::size_t>(word_bits);
  ARO_REQUIRE(word_count >= 1, "responses shorter than one word");
  // Word positions are independent, so each parallel index returns its own
  // exact integer (pairs, collisions) tally; the serial integer sum below is
  // associative, keeping the estimate bit-identical at any thread count.
  struct WordTally {
    std::size_t pairs = 0;
    std::size_t collisions = 0;
  };
  const auto tallies = parallel_map_chips(word_count, [&](std::size_t w) {
    std::unordered_map<std::uint32_t, std::size_t> counts;
    for (const auto& r : responses) {
      std::uint32_t word = 0;
      for (int b = 0; b < word_bits; ++b) {
        word = (word << 1) |
               static_cast<std::uint32_t>(r.get(w * static_cast<std::size_t>(word_bits) +
                                                static_cast<std::size_t>(b)));
      }
      ++counts[word];
    }
    WordTally tally;
    const std::size_t n = responses.size();
    tally.pairs = n * (n - 1) / 2;
    for (const auto& [word, c] : counts) tally.collisions += c * (c - 1) / 2;
    return tally;
  });
  std::size_t pairs = 0;
  std::size_t collisions = 0;
  for (const WordTally& t : tallies) {
    pairs += t.pairs;
    collisions += t.collisions;
  }
  ARO_ASSERT(pairs > 0, "no word pairs counted");
  const double rate = std::max(static_cast<double>(collisions) / static_cast<double>(pairs),
                               std::pow(2.0, -static_cast<double>(word_bits)));
  // Collision probability of an i.i.d. source with per-symbol collision
  // probability q is q; min-entropy lower bound via p_max <= sqrt(q).
  const double p_max = std::sqrt(rate);
  return -std::log2(p_max) / static_cast<double>(word_bits);
}

double markov_min_entropy(std::span<const BitVector> responses) {
  ARO_REQUIRE(!responses.empty(), "Markov estimate needs responses");
  for (const auto& r : responses) {
    ARO_REQUIRE(r.size() >= 2, "Markov estimate needs >= 2 bits per response");
  }
  // Pool transition counts over all responses: per-chip counts are exact
  // integers, so summing them in chip order reproduces the serial tallies
  // bit-for-bit regardless of thread count.
  struct TransitionTally {
    std::uint64_t n0 = 0;
    std::uint64_t n1 = 0;
    std::uint64_t t01 = 0;
    std::uint64_t t11 = 0;
    std::uint64_t samples = 0;
  };
  const auto tallies = parallel_map_chips(responses.size(), [&](std::size_t c) {
    const BitVector& r = responses[c];
    TransitionTally tally;
    for (std::size_t i = 0; i + 1 < r.size(); ++i) {
      const bool a = r.get(i);
      const bool b = r.get(i + 1);
      if (a) {
        ++tally.n1;
        if (b) ++tally.t11;
      } else {
        ++tally.n0;
        if (b) ++tally.t01;
      }
      ++tally.samples;
    }
    return tally;
  });
  double n0 = 0.0;
  double n1 = 0.0;
  double t01 = 0.0;
  double t11 = 0.0;
  std::size_t samples = 0;
  for (const TransitionTally& t : tallies) {
    n0 += static_cast<double>(t.n0);
    n1 += static_cast<double>(t.n1);
    t01 += static_cast<double>(t.t01);
    t11 += static_cast<double>(t.t11);
    samples += t.samples;
  }
  const double p1 = (n1 + t01) > 0.0 ? (n1 / (n0 + n1)) : 0.5;
  const double p01 = n0 > 0.0 ? t01 / n0 : 0.5;
  const double p11 = n1 > 0.0 ? t11 / n1 : 0.5;
  // Upper-bound the probabilities before chaining (conservative).
  const double q1 = upper_bound(std::max(p1, 1.0 - p1), samples);
  const double q0max = upper_bound(std::max(p01, 1.0 - p01), samples);
  const double q1max = upper_bound(std::max(p11, 1.0 - p11), samples);
  // Most probable length-L path: start with the likelier bit, then L-1 steps
  // of the likelier transition.  Per-bit entropy is the asymptotic rate.
  const double step = std::max(q0max, q1max);
  (void)q1;  // the start symbol's contribution vanishes asymptotically
  return -std::log2(std::max(step, 1e-12));
}

double min_entropy_estimate(std::span<const BitVector> responses) {
  const double mcv = mcv_min_entropy(responses);
  const double coll = collision_min_entropy(responses);
  const double markov = markov_min_entropy(responses);
  return std::min({mcv, coll, markov});
}

}  // namespace aropuf
