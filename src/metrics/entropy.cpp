#include "metrics/entropy.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "metrics/uniformity.hpp"

namespace aropuf {

namespace {

/// SP 800-90B style upper confidence bound on an observed proportion
/// (normal approximation at 99 %): p_u = p + 2.576 * sqrt(p(1-p)/n), capped.
double upper_bound(double p, std::size_t n) {
  const double adj = 2.576 * std::sqrt(p * (1.0 - p) / static_cast<double>(n));
  return std::min(1.0, p + adj);
}

}  // namespace

double mcv_min_entropy(std::span<const BitVector> responses) {
  ARO_REQUIRE(responses.size() >= 2, "MCV estimate needs a population");
  const auto aliasing = bit_aliasing(responses);
  double total = 0.0;
  for (const double p1 : aliasing) {
    const double p_max = std::max(p1, 1.0 - p1);
    const double p_u = upper_bound(p_max, responses.size());
    total += -std::log2(std::max(p_u, 1e-12));
  }
  return total / static_cast<double>(aliasing.size());
}

double collision_min_entropy(std::span<const BitVector> responses, int word_bits) {
  ARO_REQUIRE(!responses.empty(), "collision estimate needs responses");
  ARO_REQUIRE(word_bits >= 1 && word_bits <= 24, "word size must be in [1, 24]");
  // Count collisions between same-position words across chips: a biased or
  // correlated source collides more often than 2^-w.
  const std::size_t word_count = responses[0].size() / static_cast<std::size_t>(word_bits);
  ARO_REQUIRE(word_count >= 1, "responses shorter than one word");
  std::size_t pairs = 0;
  std::size_t collisions = 0;
  for (std::size_t w = 0; w < word_count; ++w) {
    std::unordered_map<std::uint32_t, std::size_t> counts;
    for (const auto& r : responses) {
      std::uint32_t word = 0;
      for (int b = 0; b < word_bits; ++b) {
        word = (word << 1) |
               static_cast<std::uint32_t>(r.get(w * static_cast<std::size_t>(word_bits) +
                                                static_cast<std::size_t>(b)));
      }
      ++counts[word];
    }
    const std::size_t n = responses.size();
    pairs += n * (n - 1) / 2;
    for (const auto& [word, c] : counts) collisions += c * (c - 1) / 2;
  }
  ARO_ASSERT(pairs > 0, "no word pairs counted");
  const double rate = std::max(static_cast<double>(collisions) / static_cast<double>(pairs),
                               std::pow(2.0, -static_cast<double>(word_bits)));
  // Collision probability of an i.i.d. source with per-symbol collision
  // probability q is q; min-entropy lower bound via p_max <= sqrt(q).
  const double p_max = std::sqrt(rate);
  return -std::log2(p_max) / static_cast<double>(word_bits);
}

double markov_min_entropy(std::span<const BitVector> responses) {
  ARO_REQUIRE(!responses.empty(), "Markov estimate needs responses");
  // Pool transition counts over all responses.
  double n0 = 0.0;
  double n1 = 0.0;
  double t01 = 0.0;
  double t11 = 0.0;
  std::size_t samples = 0;
  for (const auto& r : responses) {
    ARO_REQUIRE(r.size() >= 2, "Markov estimate needs >= 2 bits per response");
    for (std::size_t i = 0; i + 1 < r.size(); ++i) {
      const bool a = r.get(i);
      const bool b = r.get(i + 1);
      if (a) {
        n1 += 1.0;
        if (b) t11 += 1.0;
      } else {
        n0 += 1.0;
        if (b) t01 += 1.0;
      }
      ++samples;
    }
  }
  const double p1 = (n1 + t01) > 0.0 ? (n1 / (n0 + n1)) : 0.5;
  const double p01 = n0 > 0.0 ? t01 / n0 : 0.5;
  const double p11 = n1 > 0.0 ? t11 / n1 : 0.5;
  // Upper-bound the probabilities before chaining (conservative).
  const double q1 = upper_bound(std::max(p1, 1.0 - p1), samples);
  const double q0max = upper_bound(std::max(p01, 1.0 - p01), samples);
  const double q1max = upper_bound(std::max(p11, 1.0 - p11), samples);
  // Most probable length-L path: start with the likelier bit, then L-1 steps
  // of the likelier transition.  Per-bit entropy is the asymptotic rate.
  const double step = std::max(q0max, q1max);
  (void)q1;  // the start symbol's contribution vanishes asymptotically
  return -std::log2(std::max(step, 1e-12));
}

double min_entropy_estimate(std::span<const BitVector> responses) {
  const double mcv = mcv_min_entropy(responses);
  const double coll = collision_min_entropy(responses);
  const double markov = markov_min_entropy(responses);
  return std::min({mcv, coll, markov});
}

}  // namespace aropuf
