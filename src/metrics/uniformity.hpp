// Uniformity, bit-aliasing, and autocorrelation.
//
//  * uniformity — fraction of 1s within one chip's response (ideal 50 %);
//  * bit-aliasing — for each bit position, the fraction of chips whose bit
//    is 1 (ideal 50 %; systematic layout bias shows up here first);
//  * autocorrelation — correlation of a response with its lag-shifted self
//    (overlapping pairings such as chain-neighbor leave a signature here).
#pragma once

#include <span>
#include <vector>

#include "common/bitvector.hpp"
#include "common/statistics.hpp"

namespace aropuf {

/// Fraction of ones in one response.
[[nodiscard]] double uniformity(const BitVector& response);

/// Uniformity statistics over a population.
[[nodiscard]] RunningStats uniformity_stats(std::span<const BitVector> responses);

/// Per-bit-position ones-fraction across chips.
[[nodiscard]] std::vector<double> bit_aliasing(std::span<const BitVector> responses);

/// Summary of how far bit-aliasing strays from the ideal 0.5.
[[nodiscard]] RunningStats bit_aliasing_stats(std::span<const BitVector> responses);

/// Normalized autocorrelation of `response` at `lag` (in [-1, 1]; bits are
/// mapped to ±1).  Requires 1 <= lag < size.
[[nodiscard]] double autocorrelation(const BitVector& response, std::size_t lag);

}  // namespace aropuf
