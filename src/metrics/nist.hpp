// NIST SP 800-22-style randomness battery ("NIST-lite").
//
// Seven of the statistical tests from the suite, enough to exercise the
// paper's randomness claim on concatenated PUF responses.  Each test
// produces a p-value; the conventional pass threshold is p >= 0.01.
//
// Implemented tests:
//   frequency (monobit), block frequency, runs, longest-run-of-ones,
//   serial (m = 3), cumulative sums (forward), approximate entropy (m = 2).
#pragma once

#include <string>
#include <vector>

#include "common/bitvector.hpp"

namespace aropuf {

struct NistTestResult {
  std::string name;
  double p_value = 0.0;
  bool applicable = true;  ///< false when the sequence is too short
  [[nodiscard]] bool pass(double alpha = 0.01) const { return !applicable || p_value >= alpha; }
};

[[nodiscard]] NistTestResult nist_monobit(const BitVector& bits);
[[nodiscard]] NistTestResult nist_block_frequency(const BitVector& bits, std::size_t block = 16);
[[nodiscard]] NistTestResult nist_runs(const BitVector& bits);
[[nodiscard]] NistTestResult nist_longest_run(const BitVector& bits);
[[nodiscard]] NistTestResult nist_serial(const BitVector& bits, std::size_t m = 3);
[[nodiscard]] NistTestResult nist_cumulative_sums(const BitVector& bits);
[[nodiscard]] NistTestResult nist_approximate_entropy(const BitVector& bits, std::size_t m = 2);

/// Runs the whole battery.
[[nodiscard]] std::vector<NistTestResult> nist_battery(const BitVector& bits);

}  // namespace aropuf
