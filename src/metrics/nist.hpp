// NIST SP 800-22-style randomness battery ("NIST-lite").
//
// Eight statistical tests, enough to exercise the paper's randomness claim
// on concatenated PUF responses.  Each test produces a p-value; the
// conventional pass threshold is p >= 0.01.
//
// Implemented tests:
//   frequency (monobit), block frequency, runs, longest-run-of-ones,
//   serial (m = 3), cumulative sums (forward), approximate entropy (m = 2),
//   autocorrelation (multi-lag, Bonferroni-corrected).
#pragma once

#include <string>
#include <vector>

#include "common/bitvector.hpp"

namespace aropuf {

struct NistTestResult {
  std::string name;
  double p_value = 0.0;
  bool applicable = true;  ///< false when the sequence is too short
  [[nodiscard]] bool pass(double alpha = 0.01) const { return !applicable || p_value >= alpha; }
};

[[nodiscard]] NistTestResult nist_monobit(const BitVector& bits);
[[nodiscard]] NistTestResult nist_block_frequency(const BitVector& bits, std::size_t block = 16);
[[nodiscard]] NistTestResult nist_runs(const BitVector& bits);
[[nodiscard]] NistTestResult nist_longest_run(const BitVector& bits);
[[nodiscard]] NistTestResult nist_serial(const BitVector& bits, std::size_t m = 3);
[[nodiscard]] NistTestResult nist_cumulative_sums(const BitVector& bits);
[[nodiscard]] NistTestResult nist_approximate_entropy(const BitVector& bits, std::size_t m = 2);

/// Multi-lag autocorrelation (AIS-31 style).  For each lag d in [1, max_lag]
/// the statistic A(d) = sum_i bit(i) xor bit(i+d) over i in [0, n-d) is
/// Binomial(n-d, 1/2) under H0; each lag's two-sided normal p-value is
/// Bonferroni-corrected and the minimum is reported, so any single periodic
/// structure fails the test.  max_lag = 0 selects n/2 (the full quadratic
/// battery).  Lags are evaluated on the Monte Carlo engine; results are
/// bit-identical at any thread count (each lag is independent and the
/// reduction runs serially in lag order).
[[nodiscard]] NistTestResult nist_autocorrelation(const BitVector& bits, std::size_t max_lag = 0);

/// Runs the whole battery.
[[nodiscard]] std::vector<NistTestResult> nist_battery(const BitVector& bits);

}  // namespace aropuf
