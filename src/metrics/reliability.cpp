#include "metrics/reliability.hpp"

#include "common/check.hpp"

namespace aropuf {

ReliabilityResult compute_reliability(const BitVector& golden,
                                      std::span<const BitVector> measurements) {
  ARO_REQUIRE(!measurements.empty(), "reliability needs at least one measurement");
  ReliabilityResult result;
  for (const auto& m : measurements) {
    result.stats.add(fractional_hamming_distance(golden, m));
  }
  return result;
}

std::vector<double> per_bit_flip_rate(const BitVector& golden,
                                      std::span<const BitVector> measurements) {
  ARO_REQUIRE(!measurements.empty(), "per-bit flip rate needs measurements");
  std::vector<double> rate(golden.size(), 0.0);
  for (const auto& m : measurements) {
    ARO_REQUIRE(m.size() == golden.size(), "measurement length mismatch");
    for (std::size_t i = 0; i < golden.size(); ++i) {
      if (m.get(i) != golden.get(i)) rate[i] += 1.0;
    }
  }
  for (auto& r : rate) r /= static_cast<double>(measurements.size());
  return rate;
}

}  // namespace aropuf
