#include "metrics/nist.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/check.hpp"
#include "common/special_functions.hpp"
#include "sim/parallel.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace aropuf {

namespace {

NistTestResult not_applicable(std::string name) {
  NistTestResult r;
  r.name = std::move(name);
  r.applicable = false;
  r.p_value = 1.0;
  return r;
}

/// Counts of overlapping m-bit patterns with cyclic wrap-around, as the
/// serial and approximate-entropy tests require.
std::vector<std::uint64_t> overlapping_pattern_counts(const BitVector& bits, std::size_t m) {
  std::vector<std::uint64_t> counts(std::size_t{1} << m, 0);
  const std::size_t n = bits.size();
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t pattern = 0;
    for (std::size_t j = 0; j < m; ++j) {
      pattern = (pattern << 1) | static_cast<std::size_t>(bits.get((i + j) % n));
    }
    ++counts[pattern];
  }
  return counts;
}

/// psi-squared statistic of the serial test.
double psi_squared(const BitVector& bits, std::size_t m) {
  if (m == 0) return 0.0;
  const auto counts = overlapping_pattern_counts(bits, m);
  const double n = static_cast<double>(bits.size());
  double sum = 0.0;
  for (const std::uint64_t c : counts) {
    sum += static_cast<double>(c) * static_cast<double>(c);
  }
  return sum * std::pow(2.0, static_cast<double>(m)) / n - n;
}

}  // namespace

NistTestResult nist_monobit(const BitVector& bits) {
  if (bits.size() < 100) return not_applicable("frequency (monobit)");
  const double n = static_cast<double>(bits.size());
  const double ones = static_cast<double>(bits.popcount());
  const double s = std::fabs(2.0 * ones - n) / std::sqrt(n);
  NistTestResult r;
  r.name = "frequency (monobit)";
  r.p_value = std::erfc(s / std::sqrt(2.0));
  return r;
}

NistTestResult nist_block_frequency(const BitVector& bits, std::size_t block) {
  ARO_REQUIRE(block >= 2, "block length must be >= 2");
  const std::size_t blocks = bits.size() / block;
  if (blocks < 4) return not_applicable("block frequency");
  double chi2 = 0.0;
  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t ones = 0;
    for (std::size_t i = 0; i < block; ++i) ones += static_cast<std::size_t>(bits.get(b * block + i));
    const double pi = static_cast<double>(ones) / static_cast<double>(block);
    chi2 += (pi - 0.5) * (pi - 0.5);
  }
  chi2 *= 4.0 * static_cast<double>(block);
  NistTestResult r;
  r.name = "block frequency";
  r.p_value = regularized_gamma_q(static_cast<double>(blocks) / 2.0, chi2 / 2.0);
  return r;
}

NistTestResult nist_runs(const BitVector& bits) {
  if (bits.size() < 100) return not_applicable("runs");
  const double n = static_cast<double>(bits.size());
  const double pi = static_cast<double>(bits.popcount()) / n;
  // Prerequisite of the runs test: monobit must not be badly violated.
  if (std::fabs(pi - 0.5) >= 2.0 / std::sqrt(n)) {
    NistTestResult r;
    r.name = "runs";
    r.p_value = 0.0;
    return r;
  }
  std::size_t runs = 1;
  for (std::size_t i = 1; i < bits.size(); ++i) {
    if (bits.get(i) != bits.get(i - 1)) ++runs;
  }
  const double v = static_cast<double>(runs);
  const double num = std::fabs(v - 2.0 * n * pi * (1.0 - pi));
  const double den = 2.0 * std::sqrt(2.0 * n) * pi * (1.0 - pi);
  NistTestResult r;
  r.name = "runs";
  r.p_value = std::erfc(num / den);
  return r;
}

NistTestResult nist_longest_run(const BitVector& bits) {
  // n >= 128 variant: M = 8, categories { <=1, 2, 3, >=4 }.
  if (bits.size() < 128) return not_applicable("longest run of ones");
  constexpr std::size_t kBlock = 8;
  static constexpr double kPi[4] = {0.2148, 0.3672, 0.2305, 0.1875};
  const std::size_t blocks = bits.size() / kBlock;
  std::size_t v[4] = {0, 0, 0, 0};
  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t longest = 0;
    std::size_t current = 0;
    for (std::size_t i = 0; i < kBlock; ++i) {
      if (bits.get(b * kBlock + i)) {
        ++current;
        longest = std::max(longest, current);
      } else {
        current = 0;
      }
    }
    if (longest <= 1) {
      ++v[0];
    } else if (longest == 2) {
      ++v[1];
    } else if (longest == 3) {
      ++v[2];
    } else {
      ++v[3];
    }
  }
  const double big_n = static_cast<double>(blocks);
  double chi2 = 0.0;
  for (int k = 0; k < 4; ++k) {
    const double expected = big_n * kPi[k];
    const double diff = static_cast<double>(v[k]) - expected;
    chi2 += diff * diff / expected;
  }
  NistTestResult r;
  r.name = "longest run of ones";
  r.p_value = regularized_gamma_q(3.0 / 2.0, chi2 / 2.0);
  return r;
}

NistTestResult nist_serial(const BitVector& bits, std::size_t m) {
  ARO_REQUIRE(m >= 2, "serial test needs m >= 2");
  if (bits.size() < (std::size_t{1} << (m + 2))) return not_applicable("serial");
  const double psi_m = psi_squared(bits, m);
  const double psi_m1 = psi_squared(bits, m - 1);
  const double psi_m2 = psi_squared(bits, m - 2);
  const double d1 = psi_m - psi_m1;
  const double d2 = psi_m - 2.0 * psi_m1 + psi_m2;
  const double p1 = regularized_gamma_q(std::pow(2.0, static_cast<double>(m - 2)), d1 / 2.0);
  const double p2 = regularized_gamma_q(std::pow(2.0, static_cast<double>(m - 3)), d2 / 2.0);
  NistTestResult r;
  r.name = "serial (m=" + std::to_string(m) + ")";
  r.p_value = std::min(p1, p2);
  return r;
}

NistTestResult nist_cumulative_sums(const BitVector& bits) {
  if (bits.size() < 100) return not_applicable("cumulative sums");
  const auto n = static_cast<double>(bits.size());
  std::int64_t sum = 0;
  std::int64_t z = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    sum += bits.get(i) ? 1 : -1;
    z = std::max<std::int64_t>(z, sum < 0 ? -sum : sum);
  }
  const double zd = static_cast<double>(z);
  const double sqrt_n = std::sqrt(n);
  double p = 1.0;
  const auto k_start = static_cast<long>(std::floor((-n / zd + 1.0) / 4.0));
  const auto k_end = static_cast<long>(std::floor((n / zd - 1.0) / 4.0));
  for (long k = k_start; k <= k_end; ++k) {
    const double kk = static_cast<double>(k);
    p -= normal_cdf((4.0 * kk + 1.0) * zd / sqrt_n) -
         normal_cdf((4.0 * kk - 1.0) * zd / sqrt_n);
  }
  const auto k2_start = static_cast<long>(std::floor((-n / zd - 3.0) / 4.0));
  const auto k2_end = static_cast<long>(std::floor((n / zd - 1.0) / 4.0));
  for (long k = k2_start; k <= k2_end; ++k) {
    const double kk = static_cast<double>(k);
    p += normal_cdf((4.0 * kk + 3.0) * zd / sqrt_n) -
         normal_cdf((4.0 * kk + 1.0) * zd / sqrt_n);
  }
  NistTestResult r;
  r.name = "cumulative sums";
  r.p_value = std::clamp(p, 0.0, 1.0);
  return r;
}

NistTestResult nist_approximate_entropy(const BitVector& bits, std::size_t m) {
  if (bits.size() < (std::size_t{1} << (m + 5))) return not_applicable("approximate entropy");
  const double n = static_cast<double>(bits.size());
  auto phi = [&bits, n](std::size_t mm) {
    const auto counts = overlapping_pattern_counts(bits, mm);
    double sum = 0.0;
    for (const std::uint64_t c : counts) {
      if (c == 0) continue;
      const double freq = static_cast<double>(c) / n;
      sum += freq * std::log(freq);
    }
    return sum;
  };
  const double ap_en = phi(m) - phi(m + 1);
  const double chi2 = 2.0 * n * (std::log(2.0) - ap_en);
  NistTestResult r;
  r.name = "approximate entropy (m=" + std::to_string(m) + ")";
  r.p_value = regularized_gamma_q(std::pow(2.0, static_cast<double>(m - 1)), chi2 / 2.0);
  return r;
}

NistTestResult nist_autocorrelation(const BitVector& bits, std::size_t max_lag) {
  const std::size_t n = bits.size();
  if (n < 100) return not_applicable("autocorrelation");
  if (max_lag == 0) max_lag = n / 2;
  if (max_lag > n / 2) max_lag = n / 2;
  const telemetry::TraceScope span(
      "nist_autocorrelation", "metrics",
      {{"n", JsonValue(static_cast<std::uint64_t>(n))},
       {"lags", JsonValue(static_cast<std::uint64_t>(max_lag))}});
  telemetry::MetricsRegistry::global().counter("metrics.autocorr_lags").add(max_lag);
  // The lag loop is the quadratic part (sum over n-d bits for every d); each
  // lag touches only read-only bits and its own output slot, so it runs on
  // the Monte Carlo engine.  p-values are pure per-lag functions of the
  // integer statistic A(d), hence bit-identical at any thread count.
  const std::vector<double> p_values =
      parallel_map_chips(max_lag, [&](std::size_t lag_index) {
        const std::size_t d = lag_index + 1;
        std::uint64_t disagreements = 0;
        for (std::size_t i = 0; i + d < n; ++i) {
          disagreements += static_cast<std::uint64_t>(bits.get(i) != bits.get(i + d));
        }
        const double m = static_cast<double>(n - d);
        const double z = (2.0 * static_cast<double>(disagreements) - m) / std::sqrt(m);
        return std::erfc(std::fabs(z) / std::sqrt(2.0));
      });
  // Serial min in lag order; the Bonferroni factor keeps the overall alpha
  // honest across max_lag dependent looks at the same sequence.
  double min_p = 1.0;
  for (const double p : p_values) min_p = std::min(min_p, p);
  NistTestResult r;
  r.name = "autocorrelation (lags=" + std::to_string(max_lag) + ")";
  r.p_value = std::min(1.0, min_p * static_cast<double>(max_lag));
  return r;
}

std::vector<NistTestResult> nist_battery(const BitVector& bits) {
  return {
      nist_monobit(bits),          nist_block_frequency(bits), nist_runs(bits),
      nist_longest_run(bits),      nist_serial(bits),          nist_cumulative_sums(bits),
      nist_approximate_entropy(bits), nist_autocorrelation(bits),
  };
}

}  // namespace aropuf
