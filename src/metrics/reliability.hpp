// Reliability: intra-chip Hamming distance against a golden (enrollment)
// response.
//
// The paper's headline metric — "% bits flipped over 10 years" — is the
// fractional HD between the enrollment response and the response measured
// after aging (plus measurement noise).  We also report per-bit flip
// probabilities so the ECC search can consume a bit-error rate.
#pragma once

#include <span>

#include "common/bitvector.hpp"
#include "common/statistics.hpp"

namespace aropuf {

struct ReliabilityResult {
  /// Over re-measurements: fractional HD to golden.
  RunningStats stats;
  /// Reliability as the paper reports it: 100 % − mean intra-chip HD %.
  [[nodiscard]] double reliability_percent() const { return (1.0 - stats.mean()) * 100.0; }
  [[nodiscard]] double flip_percent() const { return stats.mean() * 100.0; }
};

/// HD of each of `measurements` against `golden`.
[[nodiscard]] ReliabilityResult compute_reliability(const BitVector& golden,
                                                    std::span<const BitVector> measurements);

/// Per-bit flip rate across measurements (index i = fraction of measurements
/// whose bit i differs from golden); feeds the worst-case-bit analysis.
[[nodiscard]] std::vector<double> per_bit_flip_rate(const BitVector& golden,
                                                    std::span<const BitVector> measurements);

}  // namespace aropuf
