// Uniqueness: the inter-chip Hamming distance statistics of a population.
//
// For k chips, all k(k-1)/2 pairwise fractional HDs are accumulated; the
// paper reports the mean (ideal 50 %: every pair of chips disagrees on half
// their bits) and the distribution (Fig. E3's histogram).
#pragma once

#include <span>

#include "common/bitvector.hpp"
#include "common/statistics.hpp"

namespace aropuf {

struct UniquenessResult {
  RunningStats stats;        ///< over all pairwise fractional HDs
  Histogram histogram{0.0, 1.0, 50};

  [[nodiscard]] double mean_percent() const { return stats.mean() * 100.0; }
};

/// Pairwise inter-chip HD over `responses` (all must be equal length).
[[nodiscard]] UniquenessResult compute_uniqueness(std::span<const BitVector> responses);

}  // namespace aropuf
