// aropuf_auth — fleet enrollment-store builder and verification bench.
//
// Build mode: enroll an N-device fleet into an ARPS binary store via
// seed-range shard workers (self-exec child processes on UNIX, in-process
// elsewhere or with --no-fork) merged deterministically:
//
//   $ aropuf_auth --build --devices 1000000 --shards 8 --jobs 4 --out runs/fleet-1m
//
// Verify mode: mmap a store and drive the concurrent verification hot path
// at each requested thread count, reporting auth/sec, p50/p99 latency, and
// the measured FAR/FRR.  The per-request decision vector is hashed; if any
// thread count (or the cached re-run) produces a different decision digest
// the tool exits 3 — the service twin of aropuf_shard's --check-single.
//
//   $ aropuf_auth --store runs/fleet-1m/store.arps --requests 200000 --threads 1,4 --cache 4096
//
// Exit codes: 0 ok, 1 failure, 2 usage error, 3 determinism mismatch.
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "auth/auth_service.hpp"
#include "auth/authenticator.hpp"
#include "auth/store_binary.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "sim/parallel.hpp"
#include "telemetry/manifest.hpp"

#if !defined(_WIN32)
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#define AROPUF_HAVE_FORK 1
#else
#include <direct.h>
#endif

namespace {

using namespace aropuf;

struct Options {
  bool build = false;
  std::uint64_t devices = 10000;
  int shards = 1;
  int jobs = 2;
  std::uint64_t bits = 128;
  std::string model = "synthetic";
  std::uint64_t seed = 2014;
  std::string out_dir = "auth-out";
  bool no_fork = false;
  bool keep_shards = false;

  std::string store_path;
  std::uint64_t requests = 100000;
  std::vector<int> threads = {0};
  std::uint64_t cache = 0;
  double impostors = 0.1;
  double noise = 0.02;
  double hot_frac = 0.01;
  double hot_prob = 0.9;
  double far_target = 1e-6;
  double threshold = 0.0;
  std::uint64_t workload_seed = 7;
  bool quiet = false;

  bool worker = false;
  int shard_index = 0;
};

bool parse_thread_list(const std::string& value, std::vector<int>* out) {
  std::vector<int> parsed;
  std::size_t pos = 0;
  while (pos < value.size()) {
    std::size_t next = value.find(',', pos);
    if (next == std::string::npos) next = value.size();
    const std::string item = value.substr(pos, next - pos);
    if (item.empty()) return false;
    char* end = nullptr;
    const long t = std::strtol(item.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || t < 0 || t > 1024) return false;
    parsed.push_back(static_cast<int>(t));
    pos = next + 1;
  }
  if (parsed.empty()) return false;
  *out = std::move(parsed);
  return true;
}

bool make_output_dir(const std::string& path) {
#if defined(_WIN32)
  return _mkdir(path.c_str()) == 0 || errno == EEXIST;
#else
  return ::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST;
#endif
}

std::string shard_store_path(const Options& opt, int index) {
  return opt.out_dir + "/shard-" + std::to_string(index) + ".arps";
}

std::string merged_store_path(const Options& opt) { return opt.out_dir + "/store.arps"; }

FleetConfig fleet_from_options(const Options& opt) {
  FleetConfig fleet;
  fleet.devices = opt.devices;
  fleet.seed = opt.seed;
  fleet.response_bits = static_cast<std::uint32_t>(opt.bits);
  fleet.model = opt.model == "sim" ? FleetModel::kSim : FleetModel::kSynthetic;
  return fleet;
}

#if defined(AROPUF_HAVE_FORK)
/// Spawns one shard-build worker: self-exec with hidden --worker plumbing.
long spawn_worker(const std::string& exe, const Options& opt, int index) {
  std::vector<std::string> args = {
      exe,
      "--build",
      "--worker",
      "--shard-index",
      std::to_string(index),
      "--shards",
      std::to_string(opt.shards),
      "--devices",
      std::to_string(opt.devices),
      "--bits",
      std::to_string(opt.bits),
      "--model",
      opt.model,
      "--seed",
      std::to_string(opt.seed),
      "--out",
      opt.out_dir,
  };
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    std::fprintf(stderr, "aropuf_auth: fork failed: %s\n", std::strerror(errno));
    return -1;
  }
  if (pid == 0) {
    ::execv(exe.c_str(), argv.data());
    std::fprintf(stderr, "aropuf_auth: exec %s failed: %s\n", exe.c_str(), std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

/// Resolves the path this binary can be re-exec'd from.
std::string self_executable(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

/// Runs shard builds as child processes, at most opt.jobs concurrently, with
/// one retry per shard.  Returns true when every shard store landed.
bool build_shards_forked(const Options& opt, const char* argv0) {
  const std::string exe = self_executable(argv0);
  std::deque<int> pending;
  for (int k = 0; k < opt.shards; ++k) pending.push_back(k);
  std::vector<int> attempts(static_cast<std::size_t>(opt.shards), 0);
  std::vector<long> pid_of(static_cast<std::size_t>(opt.shards), -1);
  int running = 0;
  int finished = 0;
  bool failed = false;
  while (finished < opt.shards && !failed) {
    while (running < opt.jobs && !pending.empty()) {
      const int k = pending.front();
      pending.pop_front();
      const long pid = spawn_worker(exe, opt, k);
      if (pid < 0) return false;
      pid_of[static_cast<std::size_t>(k)] = pid;
      ++attempts[static_cast<std::size_t>(k)];
      ++running;
    }
    int status = 0;
    const pid_t reaped = ::waitpid(-1, &status, 0);
    if (reaped < 0) return false;
    --running;
    int shard = -1;
    for (int k = 0; k < opt.shards; ++k) {
      if (pid_of[static_cast<std::size_t>(k)] == reaped) shard = k;
    }
    if (shard < 0) continue;
    pid_of[static_cast<std::size_t>(shard)] = -1;
    const bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (ok) {
      ++finished;
      if (!opt.quiet) {
        std::printf("aropuf_auth: shard %d/%d built\n", shard + 1, opt.shards);
      }
    } else if (attempts[static_cast<std::size_t>(shard)] < 2) {
      std::fprintf(stderr, "aropuf_auth: shard %d failed, retrying\n", shard);
      pending.push_back(shard);
    } else {
      std::fprintf(stderr, "aropuf_auth: shard %d failed twice, giving up\n", shard);
      failed = true;
    }
  }
  return !failed;
}
#endif  // AROPUF_HAVE_FORK

int run_build(const Options& opt, const char* argv0) {
  const FleetConfig fleet = fleet_from_options(opt);

  if (opt.worker) {
    // Hidden worker mode: build one shard in-process and exit.
    build_fleet_shard(fleet, static_cast<std::size_t>(opt.shard_index),
                      static_cast<std::size_t>(opt.shards), shard_store_path(opt, opt.shard_index));
    return 0;
  }

  if (!make_output_dir(opt.out_dir)) {
    std::fprintf(stderr, "aropuf_auth: cannot create %s\n", opt.out_dir.c_str());
    return 1;
  }

  const auto build_start = std::chrono::steady_clock::now();
  {
    telemetry::StageTimer timer("enroll_shards");
    bool forked = false;
#if defined(AROPUF_HAVE_FORK)
    if (!opt.no_fork && opt.shards > 1) {
      if (!build_shards_forked(opt, argv0)) return 1;
      forked = true;
    }
#else
    (void)argv0;
#endif
    if (!forked) {
      for (int k = 0; k < opt.shards; ++k) {
        build_fleet_shard(fleet, static_cast<std::size_t>(k),
                          static_cast<std::size_t>(opt.shards), shard_store_path(opt, k));
        if (!opt.quiet) std::printf("aropuf_auth: shard %d/%d built\n", k + 1, opt.shards);
      }
    }
  }

  std::uint64_t total = 0;
  {
    telemetry::StageTimer timer("merge_store");
    std::vector<std::string> shard_paths;
    for (int k = 0; k < opt.shards; ++k) shard_paths.push_back(shard_store_path(opt, k));
    total = merge_enrollment_stores(shard_paths, merged_store_path(opt));
    if (!opt.keep_shards) {
      for (const std::string& path : shard_paths) std::remove(path.c_str());
    }
  }
  const double wall =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - build_start)
          .count();
  const double enroll_per_sec = wall > 0.0 ? static_cast<double>(total) / wall : 0.0;
  if (!opt.quiet) {
    std::printf("aropuf_auth: enrolled %llu devices into %s (%.0f devices/s)\n",
                static_cast<unsigned long long>(total), merged_store_path(opt).c_str(),
                enroll_per_sec);
  }

  JsonValue::Object auth;
  auth["mode"] = "build";
  auth["devices"] = static_cast<std::uint64_t>(total);
  auth["shards"] = opt.shards;
  auth["response_bits"] = opt.bits;
  auth["model"] = opt.model;
  auth["seed"] = opt.seed;
  auth["store"] = merged_store_path(opt);
  auth["enroll_per_sec"] = enroll_per_sec;
  telemetry::set_runtime_field("auth", JsonValue(std::move(auth)));

  JsonValue::Object config;
  config["devices"] = opt.devices;
  config["shards"] = opt.shards;
  config["bits"] = opt.bits;
  config["model"] = opt.model;
  config["seed"] = opt.seed;
  return telemetry::finalize_run("auth_build", JsonValue(std::move(config)),
                                 opt.out_dir + "/build.manifest.json")
             ? 0
             : 1;
}

int run_verify(const Options& opt) {
  std::shared_ptr<BinaryEnrollmentStore> store = BinaryEnrollmentStore::open(opt.store_path);
  const AuthStoreParams params = store->params();
  if (params.response_bits == 0) {
    std::fprintf(stderr, "aropuf_auth: %s is a key-mode store; the verification bench needs "
                         "enrollment responses\n",
                 opt.store_path.c_str());
    return 1;
  }

  FleetConfig fleet;
  fleet.devices = store->device_count();
  fleet.seed = params.fleet_seed;
  fleet.response_bits = params.response_bits;
  fleet.model = params.model == static_cast<std::uint32_t>(FleetModel::kSim)
                    ? FleetModel::kSim
                    : FleetModel::kSynthetic;

  const AuthPolicy policy =
      opt.threshold > 0.0
          ? AuthPolicy{opt.threshold}
          : AuthPolicy::for_false_accept_rate(params.response_bits, opt.far_target);
  policy.validate();
  const double far_analytic = policy.false_accept_probability(params.response_bits);

  WorkloadConfig workload;
  workload.requests = opt.requests;
  workload.impostor_fraction = opt.impostors;
  workload.noise = opt.noise;
  workload.hot_fraction = opt.hot_frac;
  workload.hot_probability = opt.hot_prob;
  workload.workload_seed = opt.workload_seed;

  if (!opt.quiet) {
    std::printf("store %s: %llu devices, %u-bit responses, threshold %.4f (FAR %.2e)\n",
                opt.store_path.c_str(), static_cast<unsigned long long>(fleet.devices),
                params.response_bits, policy.accept_threshold, far_analytic);
    std::printf("%8s %14s %10s %10s %12s %10s %10s\n", "threads", "auth/s", "p50_us", "p99_us",
                "FAR", "FRR", "cache_hit%");
  }

  JsonValue::Array results;
  std::string reference_digest;
  bool digests_agree = true;
  for (const int threads : opt.threads) {
    ParallelExecutor::set_global_thread_count(threads);
    Authenticator auth(policy, store, fleet_verifier_key(fleet.seed));
    if (opt.cache > 0) auth.set_cache(static_cast<std::size_t>(opt.cache));
    const WorkloadStats stats = run_verify_workload(auth, fleet, workload);
    const std::string digest = Sha256::to_hex(stats.decisions_digest);
    if (reference_digest.empty()) {
      reference_digest = digest;
    } else if (digest != reference_digest) {
      digests_agree = false;
    }
    const double lookups = static_cast<double>(stats.cache_hits + stats.cache_misses);
    const double hit_pct =
        lookups > 0.0 ? 100.0 * static_cast<double>(stats.cache_hits) / lookups : 0.0;
    if (!opt.quiet) {
      std::printf("%8d %14.0f %10.2f %10.2f %12.2e %10.4f %10s\n",
                  threads == 0 ? ParallelExecutor::global().thread_count() : threads,
                  stats.auth_per_sec, stats.p50_us, stats.p99_us, stats.far_measured,
                  stats.frr_measured,
                  opt.cache > 0 ? (std::to_string(hit_pct).substr(0, 5)).c_str() : "-");
    }
    JsonValue::Object row;
    row["threads"] = threads;
    row["auth_per_sec"] = stats.auth_per_sec;
    row["p50_us"] = stats.p50_us;
    row["p99_us"] = stats.p99_us;
    row["far_measured"] = stats.far_measured;
    row["frr_measured"] = stats.frr_measured;
    row["false_accepts"] = stats.false_accepts;
    row["false_rejects"] = stats.false_rejects;
    row["impostors"] = stats.impostors;
    row["cache_hits"] = stats.cache_hits;
    row["cache_misses"] = stats.cache_misses;
    row["decisions_sha256"] = digest;
    results.push_back(JsonValue(std::move(row)));
  }

  JsonValue::Object auth_field;
  auth_field["mode"] = "verify";
  auth_field["store"] = opt.store_path;
  auth_field["devices"] = static_cast<std::uint64_t>(fleet.devices);
  auth_field["response_bits"] = static_cast<std::uint64_t>(params.response_bits);
  auth_field["requests"] = opt.requests;
  auth_field["accept_threshold"] = policy.accept_threshold;
  auth_field["far_analytic"] = far_analytic;
  auth_field["cache_capacity"] = opt.cache;
  auth_field["impostor_fraction"] = opt.impostors;
  auth_field["noise"] = opt.noise;
  auth_field["results"] = JsonValue(std::move(results));
  auth_field["thread_counts_bit_identical"] = digests_agree;
  telemetry::set_runtime_field("auth", JsonValue(std::move(auth_field)));

  JsonValue::Object config;
  config["store"] = opt.store_path;
  config["requests"] = opt.requests;
  config["cache"] = opt.cache;
  config["workload_seed"] = opt.workload_seed;
  const bool wrote = telemetry::finalize_run("auth_verify", JsonValue(std::move(config)));
  if (!digests_agree) {
    std::fprintf(stderr,
                 "aropuf_auth: decision digests differ across thread counts (determinism bug)\n");
    return 3;
  }
  return wrote ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string threads_value;
  cli::Parser parser("aropuf_auth",
                     "fleet enrollment-store builder and verification bench (E15)");
  parser.flag("--build", &opt.build, "build an enrollment store instead of verifying")
      .opt_uint64("--devices", &opt.devices, "N", "fleet size for --build")
      .opt_int("--shards", &opt.shards, "K", "store shards to build and merge", 1)
      .opt_int("--jobs", &opt.jobs, "J", "concurrent shard-build workers", 1)
      .opt_uint64("--bits", &opt.bits, "B", "response bits per device")
      .opt_string("--model", &opt.model, "NAME", "response model: synthetic|sim")
      .opt_uint64("--seed", &opt.seed, "S", "fleet master seed")
      .opt_string("--out", &opt.out_dir, "DIR", "output directory for --build")
      .flag("--no-fork", &opt.no_fork, "build shards in-process (no child workers)")
      .flag("--keep-shards", &opt.keep_shards, "keep per-shard stores after the merge")
      .opt_string("--store", &opt.store_path, "PATH", "ARPS store to verify against")
      .opt_uint64("--requests", &opt.requests, "M", "verification requests to drive")
      .opt_custom("--threads", "LIST", "comma-separated thread counts (0 = default)",
                  [&opt](const std::string& value) { return parse_thread_list(value, &opt.threads); })
      .opt_uint64("--cache", &opt.cache, "CAP", "hot-device LRU capacity (0 = off)")
      .opt_double("--impostors", &opt.impostors, "F", "impostor fraction of requests", 0.0)
      .opt_double("--noise", &opt.noise, "E", "per-bit flip rate for genuine re-reads", 0.0)
      .opt_double("--hot-frac", &opt.hot_frac, "F", "fraction of devices in the hot set", 0.0)
      .opt_double("--hot-prob", &opt.hot_prob, "P", "probability a request is hot", 0.0)
      .opt_double("--far", &opt.far_target, "FAR", "target false-accept rate for the policy", 0.0)
      .opt_double("--threshold", &opt.threshold, "T", "explicit accept threshold (overrides --far)",
                  0.0)
      .opt_uint64("--workload-seed", &opt.workload_seed, "W", "request-stream seed")
      .flag("--quiet", &opt.quiet, "suppress progress output");
  parser.flag("--worker", &opt.worker, "").hidden();
  parser.opt_int("--shard-index", &opt.shard_index, "K", "", 0).hidden();
  parser.with_env_help();

  switch (parser.parse(argc, argv)) {
    case cli::ParseStatus::kOk: break;
    case cli::ParseStatus::kHelp: return 0;
    case cli::ParseStatus::kError: return 2;
  }
  if (!opt.build && opt.store_path.empty()) {
    std::fprintf(stderr, "aropuf_auth: need --build or --store PATH (see --help)\n");
    return 2;
  }

  try {
    return opt.build ? run_build(opt, argv[0]) : run_verify(opt);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "aropuf_auth: %s\n", error.what());
    return 1;
  }
}
