// aropuf_fleet: fleet orchestration of the E2+E3 population study over TCP.
//
// One binary, two modes (the same shape aropuf_shard has, with the process
// boundary widened to a network boundary):
//
//  * coordinator (default) — listens on --listen PORT, splits the chip
//    population into --shards seed-range shard jobs using the same planner
//    aropuf_shard uses, and dispatches them to whatever workers connect.
//    Returned shard-manifest containers are persisted into --out (the exact
//    bytes a disk-writing worker would have produced) and streamed straight
//    into AggregateBuilder through the format-agnostic decode path, so the
//    merged manifest is bit-identical to a single-host aropuf_shard run —
//    --check-single proves it on demand.  Workers that die, stall past
//    --worker-timeout, or return manifests that will not fold route their
//    jobs back through the retry budget (--retries).
//
//  * worker (--worker HOST:PORT) — connects to a coordinator, runs assigned
//    shard jobs in-process (sim/shard_study), and frames each resulting
//    manifest container back.  Progress heartbeats ride the same connection.
//    Workers are stateless: every job message carries the full study
//    parameterization, so a worker binary needs no other configuration.
//
// The wire protocol (ARPF frames: HELLO/JOB/HEARTBEAT/RESULT/ERROR/METRICS/
// BYE) is specified normatively in DESIGN.md §11; docs/runbook-fleet.md is
// the operator guide.
//
// Observability: the coordinator stamps a fleet-wide trace id on every JOB,
// folds worker METRICS snapshots into a live per-worker HUD (TTY only), and
// on exit writes fleet_trace.json (merged offset-corrected Chrome timeline),
// fleet_metrics.json (schema aropuf-fleet-metrics v1), and
// fleet_metrics.prom (Prometheus text exposition) into --out — for failed
// runs too.
//
// Exit codes, coordinator mode: 0 success; 1 failed jobs, fold errors,
// provenance conflicts, or write errors; 2 usage error; 3 --check-single
// mismatch (fleet-merged statistics differ from the single-process run — a
// determinism regression, never acceptable).  Worker mode exits with the
// WorkerExit status (0 = dismissed with BYE).
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "net/coordinator.hpp"
#include "net/fleet_view.hpp"
#include "net/socket.hpp"
#include "net/worker.hpp"
#include "sim/parallel.hpp"
#include "sim/shard_study.hpp"
#include "sim/study_report.hpp"
#include "telemetry/aggregate.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prof.hpp"
#include "telemetry/trace.hpp"

#if !defined(_WIN32)
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#else
#include <direct.h>
#endif

namespace {

using namespace aropuf;

struct Options {
  // Study parameters (coordinator; shipped to workers inside each JOB).
  int chips = 40;
  std::uint64_t seed = 2014;
  std::vector<double> checkpoints = {1.0, 2.0, 5.0, 10.0};
  std::string run = "fleet_study";
  std::string format = "binary";  ///< RESULT transport: "binary" or "json"

  // Coordinator parameters.
  int listen_port = -1;  ///< -1 = coordinator mode not selected
  std::string port_file;
  int shards = 4;
  int retries = 1;
  double worker_timeout_s = 60.0;
  double timeout_s = 0.0;
  std::string out_dir = "fleet-run";
  bool drop_raw = false;
  bool check_single = false;
  bool quiet = false;

  // Worker parameters.
  std::string worker_spec;  ///< "HOST:PORT"; non-empty selects worker mode
  std::string worker_name;
  int threads = 0;
  bool abort_first_job = false;  ///< test hook (hidden)
};

bool parse_checkpoints(const std::string& csv, std::vector<double>* out) {
  std::vector<double> years;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) return false;
    char* end = nullptr;
    const double y = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || y < 0.0) return false;
    years.push_back(y);
  }
  if (years.empty() || !std::is_sorted(years.begin(), years.end())) return false;
  *out = std::move(years);
  return true;
}

/// Parses "HOST:PORT" (worker connect target).  The last ':' splits, so IPv6
/// literals work unbracketed as long as the port is present.
bool parse_hostport(const std::string& spec, std::string* host, std::uint16_t* port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) return false;
  char* end = nullptr;
  const long p = std::strtol(spec.substr(colon + 1).c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || p < 1 || p > 65535) return false;
  *host = spec.substr(0, colon);
  *port = static_cast<std::uint16_t>(p);
  return true;
}

int parse_args(int argc, char** argv, Options* opt) {
  cli::Parser parser("aropuf_fleet",
                     "TCP fleet orchestrator for the E2+E3 population study");
  parser
      .opt_int("--chips", &opt->chips, "N", "total chip population (default 40)", 2)
      .opt_uint64("--seed", &opt->seed, "S", "master RNG seed (default 2014)")
      .opt_custom("--checkpoints", "CSV", "aging years, non-decreasing (default 1,2,5,10)",
                  [opt](const std::string& v) { return parse_checkpoints(v, &opt->checkpoints); })
      .opt_string("--run", &opt->run, "NAME", "run name in manifests (default fleet_study)")
      .opt_int("--listen", &opt->listen_port, "PORT",
               "coordinator mode: listen on PORT (0 = kernel-assigned)", 0)
      .opt_string("--port-file", &opt->port_file, "PATH",
                  "coordinator: write the bound port to PATH once listening")
      .opt_int("--shards", &opt->shards, "K", "number of shard jobs (default 4)", 1)
      .opt_int("--retries", &opt->retries, "R", "retries per failed job (default 1)", 0)
      .opt_double("--worker-timeout", &opt->worker_timeout_s, "SEC",
                  "reassign a silent busy worker's job after SEC seconds "
                  "(default 60, 0 = never)",
                  0.0)
      .opt_double("--timeout", &opt->timeout_s, "SEC",
                  "abort the whole run after SEC seconds (default: none)", 0.0)
      .opt_string("--out", &opt->out_dir, "DIR", "output directory (default fleet-run)")
      .opt_string("--format", &opt->format, "FMT",
                  "shard manifest transport: binary or json (default binary)")
      .flag("--drop-raw", &opt->drop_raw,
            "drop raw per-chip series once reduced (aggregate omits them)")
      .flag("--check-single", &opt->check_single, "verify merged results == single-process run")
      .flag("--quiet", &opt->quiet, "suppress per-event narration")
      .opt_string("--worker", &opt->worker_spec, "HOST:PORT",
                  "worker mode: serve jobs from the coordinator at HOST:PORT")
      .opt_string("--name", &opt->worker_name, "NAME", "worker display name (default host:pid)")
      .opt_int("--threads", &opt->threads, "T",
               "worker threads per job (default: library default)", 1)
      .with_env_help();
  // Deterministic killed-worker simulation for the e2e tests: hard-close the
  // connection on the first assigned job.  Parsed but kept out of --help.
  parser.flag("--abort-first-job", &opt->abort_first_job, "abort on first job (test hook)")
      .hidden();

  switch (parser.parse(argc, argv)) {
    case cli::ParseStatus::kHelp:
      std::exit(0);
    case cli::ParseStatus::kError:
      return 2;
    case cli::ParseStatus::kOk:
      break;
  }
  const bool coordinator = opt->listen_port >= 0;
  const bool worker = !opt->worker_spec.empty();
  if (coordinator == worker) {
    std::fprintf(stderr,
                 "aropuf_fleet: pick exactly one mode: --listen PORT (coordinator) or "
                 "--worker HOST:PORT\n");
    return 2;
  }
  if (opt->listen_port > 65535) {
    std::fprintf(stderr, "aropuf_fleet: --listen port out of range\n");
    return 2;
  }
  if (opt->format != "binary" && opt->format != "json") {
    std::fprintf(stderr, "aropuf_fleet: --format must be binary or json\n");
    return 2;
  }
  return 0;
}

bool make_output_dir(const std::string& dir) {
#if !defined(_WIN32)
  return ::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST;
#else
  return ::_mkdir(dir.c_str()) == 0 || errno == EEXIST;
#endif
}

std::int64_t now_unix_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

bool stdout_is_tty() {
#if !defined(_WIN32)
  return ::isatty(1) == 1;
#else
  return false;
#endif
}

/// 16-hex-char fleet trace id: splitmix64 over seed ⊕ wall clock ⊕ pid, so
/// concurrent runs from the same seed still get distinct timelines.
std::string make_trace_id(std::uint64_t seed) {
  std::uint64_t x = seed ^ static_cast<std::uint64_t>(now_unix_ms());
#if !defined(_WIN32)
  x ^= static_cast<std::uint64_t>(::getpid()) << 32;
#endif
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(x));
  return buf;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out.is_open()) return false;
  out << text;
  out.flush();
  return static_cast<bool>(out);
}

/// Live per-worker fleet table, redrawn in place with the same cursor-up +
/// line-clear idiom aropuf_shard's HUD uses.  Active only on a TTY without
/// --quiet; when active it replaces the per-event narration entirely (the
/// two would shred each other's terminal region).
class FleetHud {
 public:
  FleetHud(bool enabled, int shards, std::int64_t start_unix_ms)
      : enabled_(enabled), shards_(shards), start_unix_ms_(start_unix_ms) {}

  [[nodiscard]] bool enabled() const { return enabled_; }

  void note_event(const std::string& event, int shard, const std::string& detail) {
    if (!enabled_) return;
    last_event_ = shard >= 0 ? event + " shard " + std::to_string(shard) + " (" + detail + ")"
                             : event + " (" + detail + ")";
  }

  void render(const net::FleetView& view, bool force) {
    if (!enabled_) return;
    // 10 Hz redraw cap: heartbeats can arrive per work unit.
    const std::int64_t now = now_unix_ms();
    if (!force && now - last_render_ms_ < 100) return;
    last_render_ms_ = now;

    if (erase_lines_ > 0) std::printf("\x1b[%zuF", erase_lines_);
    std::size_t lines = 0;
    auto line = [&lines](const std::string& text) {
      std::printf("\x1b[2K%s\n", text.c_str());
      ++lines;
    };
    char head[256];
    std::snprintf(head, sizeof head,
                  "fleet: %d/%d done  %d failed  %d reassigned  elapsed %.1fs%s%s",
                  view.shards_done(), shards_, view.shards_failed(), view.reassignments(),
                  static_cast<double>(now - start_unix_ms_) / 1000.0,
                  last_event_.empty() ? "" : "  |  ", last_event_.c_str());
    line(head);
    for (const net::WorkerView& w : view.workers()) {
      char row[256];
      std::string stage = w.last_stage.empty() ? "-" : w.last_stage;
      if (w.stage_total > 0) {
        stage += " " + std::to_string(w.stage_done) + "/" + std::to_string(w.stage_total);
      }
      std::snprintf(row, sizeof row,
                    "  worker[%d] %-24s %s  jobs %d/%d  retry %d  %s  clk%+.1fms",
                    w.pid - 2, w.name.c_str(),
                    w.busy_shard >= 0 ? ("busy s" + std::to_string(w.busy_shard)).c_str()
                    : w.connected    ? "idle   "
                                     : "gone   ",
                    w.jobs_done, w.jobs_assigned, w.failed_attempts, stage.c_str(),
                    w.clock_offset_ms);
      line(row);
    }
    std::fflush(stdout);
    erase_lines_ = lines;
  }

  /// Leaves the final table on screen and stops managing the region.
  void finish(const net::FleetView& view) {
    if (!enabled_) return;
    render(view, /*force=*/true);
    erase_lines_ = 0;
  }

 private:
  bool enabled_;
  int shards_;
  std::int64_t start_unix_ms_;
  std::int64_t last_render_ms_ = 0;
  std::size_t erase_lines_ = 0;
  std::string last_event_;
};

// --- worker mode -------------------------------------------------------------

int run_worker_mode(const Options& opt) {
  std::string host;
  std::uint16_t port = 0;
  if (!parse_hostport(opt.worker_spec, &host, &port)) {
    std::fprintf(stderr, "aropuf_fleet: bad --worker spec '%s' (want HOST:PORT)\n",
                 opt.worker_spec.c_str());
    return 2;
  }
  if (opt.threads > 0) ParallelExecutor::set_global_thread_count(opt.threads);

  net::WorkerConfig config;
  config.host = host;
  config.port = port;
  config.name = opt.worker_name;
  config.threads = opt.threads;
  config.abort_first_job = opt.abort_first_job;

  // The job body: the same in-process shard runner aropuf_shard workers use,
  // parameterized entirely from the JOB message.
  const net::JobRunner runner = [](const net::JobMsg& job, const auto& progress) {
    ShardStudyConfig cfg;
    cfg.pop.chips = job.chips;
    cfg.pop.seed = job.seed;
    cfg.checkpoints = job.checkpoints;
    return run_shard_job(cfg, job.shard, job.shards, job.run, job.format == "binary", progress);
  };

  const net::WorkerExit status = net::run_worker(config, runner);
  switch (status) {
    case net::WorkerExit::kBye:
      break;
    case net::WorkerExit::kLost:
      std::fprintf(stderr, "aropuf_fleet: connection to coordinator lost\n");
      break;
    case net::WorkerExit::kProtocol:
      std::fprintf(stderr, "aropuf_fleet: coordinator violated the protocol\n");
      break;
    case net::WorkerExit::kAborted:
      std::fprintf(stderr, "aropuf_fleet: aborted on first job (test hook)\n");
      break;
  }
  return static_cast<int>(status);
}

// --- coordinator mode --------------------------------------------------------

std::string shard_manifest_path(const Options& opt, int shard) {
  return opt.out_dir + "/shard-" + std::to_string(shard) +
         (opt.format == "binary" ? ".manifest.bin" : ".manifest.json");
}

int run_coordinator_mode(const Options& opt) {
  if (!make_output_dir(opt.out_dir)) {
    std::fprintf(stderr, "aropuf_fleet: cannot create output directory %s\n",
                 opt.out_dir.c_str());
    return 1;
  }

  ShardStudyConfig cfg;
  cfg.pop.chips = opt.chips;
  cfg.pop.seed = opt.seed;
  cfg.checkpoints = opt.checkpoints;
  const telemetry::RawSeriesPolicy policy = opt.drop_raw
                                                ? telemetry::RawSeriesPolicy::kDropAfterCheck
                                                : telemetry::RawSeriesPolicy::kKeep;

  // Observability plane: one trace session (buffer-only unless the operator
  // asked for a file via AROPUF_TRACE), one fleet-wide trace id stamped on
  // every JOB, and one FleetView folding everything the wire reports.
  if (!telemetry::trace_enabled()) telemetry::start_trace_buffered();
  telemetry::set_trace_process_label("coordinator " + opt.run);
  telemetry::set_trace_thread_label("coordinator main");
  const std::string trace_id = make_trace_id(opt.seed);
  const std::int64_t run_start_ms = now_unix_ms();
  net::FleetView view(opt.shards, opt.run, trace_id, run_start_ms);
  FleetHud hud(stdout_is_tty() && !opt.quiet, opt.shards, run_start_ms);

  net::CoordinatorConfig config;
  config.port = static_cast<std::uint16_t>(opt.listen_port);
  config.jobs = opt.shards;
  config.retries = opt.retries;
  config.heartbeat_timeout_s = opt.worker_timeout_s;
  config.total_timeout_s = opt.timeout_s;
  config.job_template.shards = opt.shards;
  config.job_template.chips = opt.chips;
  config.job_template.seed = opt.seed;
  config.job_template.checkpoints = opt.checkpoints;
  config.job_template.run = opt.run;
  config.job_template.format = opt.format;
  config.job_template.trace_id = trace_id;

  // Streaming fold: each RESULT is decoded and folded the moment it lands,
  // exactly like aropuf_shard --stream — the builder keeps only the
  // out-of-order window, never the whole population.
  telemetry::AggregateBuilder builder(policy);

  net::CoordinatorCallbacks callbacks;
  callbacks.on_result = [&](int shard, std::string bytes, const std::string& worker) {
    // Persist the container first (the same bytes a disk-writing worker
    // would have produced) so a failed run leaves evidence; a write failure
    // is advisory, the in-memory fold below is authoritative.
    const std::string path = shard_manifest_path(opt, shard);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (out.is_open()) out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      if (!out.good()) {
        std::fprintf(stderr, "aropuf_fleet: warning: could not persist shard %d to %s\n", shard,
                     path.c_str());
      }
    }
    // Throwing here fails the attempt and routes the job through the retry
    // budget — a manifest that will not fold is as fatal as a dead worker.
    builder.add(telemetry::decode_shard_input(std::move(bytes), "tcp://" + worker));
    view.note_result(shard, worker, now_unix_ms());
    if (hud.enabled()) {
      hud.render(view, /*force=*/true);
    } else if (!opt.quiet) {
      std::printf("shard %d: folded (%d/%d from %s)\n", shard, builder.shards_added(),
                  opt.shards, worker.c_str());
      std::fflush(stdout);
    }
  };
  // Stage transitions only — per-unit beats would flood a fleet log.  Keyed
  // per shard; callbacks fire on the coordinator's (this) thread, so the map
  // outlives run() without synchronization.
  std::map<int, std::string> last_stage;
  callbacks.on_heartbeat = [&](const telemetry::Heartbeat& beat, const std::string& worker) {
    view.note_heartbeat(beat, worker, now_unix_ms());
    if (hud.enabled()) {
      hud.render(view, /*force=*/false);
      return;
    }
    if (opt.quiet) return;
    const std::string key = worker + "|" + beat.stage;
    if (last_stage[beat.shard] == key) return;
    last_stage[beat.shard] = key;
    std::printf("shard %d: %s (%s)\n", beat.shard, beat.stage.c_str(), worker.c_str());
    std::fflush(stdout);
  };
  callbacks.on_metrics = [&](const net::MetricsMsg& msg, const std::string& worker,
                             double clock_offset_ms) {
    view.note_metrics(msg, worker, clock_offset_ms, now_unix_ms());
    hud.render(view, /*force=*/false);
  };
  callbacks.on_event = [&](const std::string& event, int shard, const std::string& detail) {
    view.note_event(event, shard, detail, now_unix_ms());
    if (hud.enabled()) {
      hud.note_event(event, shard, detail);
      hud.render(view, /*force=*/true);
      return;
    }
    if (opt.quiet) return;
    if (shard >= 0) {
      std::printf("fleet: %s shard %d: %s\n", event.c_str(), shard, detail.c_str());
    } else {
      std::printf("fleet: %s: %s\n", event.c_str(), detail.c_str());
    }
    std::fflush(stdout);
  };

  std::optional<net::Coordinator> coordinator;
  try {
    coordinator.emplace(config, std::move(callbacks));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "aropuf_fleet: cannot listen on port %d: %s\n", opt.listen_port,
                 e.what());
    return 1;
  }
  std::printf("aropuf_fleet: coordinating %d shard job(s) on port %u\n", opt.shards,
              static_cast<unsigned>(coordinator->port()));
  std::fflush(stdout);
  if (!opt.port_file.empty()) {
    // The port file is the rendezvous for scripted runs (--listen 0): written
    // atomically (tmp + rename) so a polling launcher never reads a torn
    // value.
    const std::string tmp = opt.port_file + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    out << coordinator->port() << '\n';
    out.close();
    if (!out.good() || std::rename(tmp.c_str(), opt.port_file.c_str()) != 0) {
      std::fprintf(stderr, "aropuf_fleet: cannot write port file %s\n", opt.port_file.c_str());
      return 1;
    }
  }

  net::FleetSummary summary;
  try {
    summary = coordinator->run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "aropuf_fleet: coordinator failed: %s\n", e.what());
    return 1;
  }
  hud.finish(view);
  std::printf(
      "aropuf_fleet: %d/%d job(s) done, %d failed, %d worker(s), %d reassignment(s)%s\n",
      summary.jobs_done, opt.shards, summary.jobs_failed, summary.workers_seen,
      summary.reassignments, summary.timed_out ? " [timed out]" : "");

  // Observability artifacts are written for failed runs too — a timeline of
  // a run that went wrong is worth more than one of a run that went right.
  view.add_local_events(telemetry::drain_trace_events(), telemetry::trace_epoch_unix_ms(),
                        "coordinator " + opt.run);
  const std::int64_t run_end_ms = now_unix_ms();
  const std::string trace_path = opt.out_dir + "/fleet_trace.json";
  const std::string metrics_path = opt.out_dir + "/fleet_metrics.json";
  const std::string prom_path = opt.out_dir + "/fleet_metrics.prom";
  if (!write_text_file(trace_path, view.merged_trace_json().dump(/*indent=*/0) + "\n") ||
      !write_text_file(metrics_path,
                       view.fleet_metrics_json(run_end_ms).dump(/*indent=*/2) + "\n") ||
      !write_text_file(prom_path, view.prometheus_text())) {
    std::fprintf(stderr, "aropuf_fleet: warning: could not write fleet observability artifacts\n");
  } else if (!opt.quiet) {
    std::printf("aropuf_fleet: fleet timeline %s, metrics %s + %s (trace_id %s)\n",
                trace_path.c_str(), metrics_path.c_str(), prom_path.c_str(), trace_id.c_str());
    std::fflush(stdout);
  }

  if (!summary.ok) {
    std::fprintf(stderr, "aropuf_fleet: run failed; no aggregate manifest written\n");
    return 1;
  }

  telemetry::AggregateResult merged;
  try {
    merged = builder.finalize();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "aropuf_fleet: aggregation failed: %s\n", e.what());
    return 1;
  }
  merged.manifest.as_object()["study"] = build_study_section(merged.manifest, cfg);

  const std::string merged_path = opt.out_dir + "/merged.manifest.json";
  if (!telemetry::write_aggregate_manifest(merged_path, merged.manifest)) {
    std::fprintf(stderr, "aropuf_fleet: failed to write aggregate manifest to %s\n",
                 merged_path.c_str());
    return 1;
  }
  std::printf("aropuf_fleet: merged manifest written to %s\n", merged_path.c_str());

  if (!merged.conflicts.empty()) {
    for (const telemetry::AggregateConflict& c : merged.conflicts) {
      std::fprintf(stderr, "aropuf_fleet: provenance conflict on '%s' across shards:\n",
                   c.field.c_str());
      for (const auto& [shard, value] : c.values) {
        std::fprintf(stderr, "    shard %d: %s\n", shard, value.c_str());
      }
    }
    return 1;
  }

  if (opt.check_single && !check_merged_against_single(cfg, opt.run, merged.manifest, policy)) {
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  const int usage = parse_args(argc, argv, &opt);
  if (usage != 0) return usage;
  if (!net::net_available()) {
    std::fprintf(stderr,
                 "aropuf_fleet: TCP fleet runs are not available on this platform; use "
                 "aropuf_shard instead\n");
    return 1;
  }
  // Coordinator and workers each profile their own process; worker "prof.*"
  // metrics additionally travel home inside METRICS snapshots and surface
  // in the FleetView Prometheus exposition.
  telemetry::start_process_profile();
  const int rc = !opt.worker_spec.empty() ? run_worker_mode(opt) : run_coordinator_mode(opt);
  const bool prof_ok = telemetry::stop_process_profile();
  return rc != 0 ? rc : (prof_ok ? 0 : 1);
}
