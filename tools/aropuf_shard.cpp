// aropuf_shard: sharded-run orchestrator for the E2+E3 population study.
//
// One binary, two modes:
//
//  * orchestrator (default) — splits the chip population into --shards
//    seed-range shards and runs each as a child worker process (self-exec
//    with --worker --shard k/N), bounded by --jobs.  Workers write ordinary
//    run manifests extended with a "shard" descriptor and a "results"
//    payload; the orchestrator merges them (telemetry/aggregate.hpp) into
//    one aggregate manifest and derives the ECC/area study from the merged
//    statistics.  Failed or timed-out shards are retried (--retries);
//    --resume skips shards whose manifest already validates.  Live progress
//    arrives over an append-only JSONL heartbeat file and renders as a
//    terminal HUD (plain log lines when stdout is not a TTY).
//
//  * worker (--worker, spawned internally) — runs one shard of the study
//    and writes its manifest + heartbeats.  Workers take every parameter on
//    the command line, never from inherited environment, so a shard's
//    manifest is reproducible from its argv alone.
//
// Process spawning is POSIX (fork/exec); on platforms without it the
// orchestrator falls back to --no-fork, which runs shards sequentially
// in-process (telemetry state is reset between shards so each "virtual
// worker" still produces an honest per-shard manifest).
//
// Exit codes: 0 success; 1 shard failure, unreadable manifests, provenance
// conflicts, or write errors; 2 usage error; 3 --check-single mismatch
// (shard-merged statistics differ from the single-process run — a
// determinism regression, never acceptable).
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "sim/parallel.hpp"
#include "sim/scenarios.hpp"
#include "sim/shard_study.hpp"
#include "sim/study_report.hpp"
#include "telemetry/aggregate.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/prof.hpp"

#if !defined(_WIN32)
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#define AROPUF_HAVE_FORK 1
#else
#include <direct.h>
#endif

namespace {

using namespace aropuf;
using Clock = std::chrono::steady_clock;

struct Options {
  // Study parameters (shared orchestrator/worker; echoed into worker argv).
  int chips = 40;
  std::uint64_t seed = 2014;
  std::vector<double> checkpoints = {1.0, 2.0, 5.0, 10.0};
  std::string run = "shard_study";
  int threads = 0;  ///< per-worker thread count; 0 = library default

  // Orchestrator parameters.
  int shards = 4;
  int jobs = 0;  ///< 0 = min(shards, hardware_concurrency)
  std::string out_dir = "shard-run";
  bool resume = false;
  double timeout_s = 0.0;  ///< 0 = no timeout
  int retries = 1;
  bool no_fork = false;
  bool check_single = false;
  bool quiet = false;
  bool stream = false;    ///< fold each shard manifest as its worker lands
  bool drop_raw = false;  ///< free raw per-chip series once reduced
  /// Shard-manifest transport: "json", "binary", or "" = auto (binary for
  /// --stream runs — that is the million-chip path the format exists for —
  /// JSON otherwise).  The merged aggregate manifest is always JSON.
  std::string format;

  // Worker parameters (internal).
  bool worker = false;
  int shard_index = 0;
  std::string manifest_path;
  std::string progress_path;
};

bool parse_checkpoints(const std::string& csv, std::vector<double>* out) {
  std::vector<double> years;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) return false;
    char* end = nullptr;
    const double y = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || y < 0.0) return false;
    years.push_back(y);
  }
  if (years.empty() || !std::is_sorted(years.begin(), years.end())) return false;
  *out = std::move(years);
  return true;
}

/// Parses "k/N" (worker shard coordinates).
bool parse_shard_spec(const std::string& spec, int* index, int* count) {
  const std::size_t slash = spec.find('/');
  if (slash == std::string::npos) return false;
  char* end = nullptr;
  const long k = std::strtol(spec.substr(0, slash).c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  const long n = std::strtol(spec.substr(slash + 1).c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  if (n < 1 || k < 0 || k >= n) return false;
  *index = static_cast<int>(k);
  *count = static_cast<int>(n);
  return true;
}

/// Returns 0 on success, 2 on usage error (with a message on stderr).
int parse_args(int argc, char** argv, Options* opt) {
  cli::Parser parser("aropuf_shard",
                     "sharded-run orchestrator for the E2+E3 population study");
  parser
      .opt_int("--chips", &opt->chips, "N", "total chip population (default 40)", 2)
      .opt_uint64("--seed", &opt->seed, "S", "master RNG seed (default 2014)")
      .opt_custom("--checkpoints", "CSV", "aging years, non-decreasing (default 1,2,5,10)",
                  [opt](const std::string& v) { return parse_checkpoints(v, &opt->checkpoints); })
      .opt_int("--shards", &opt->shards, "K", "number of shards (default 4)", 1)
      .opt_int("--jobs", &opt->jobs, "J", "concurrent workers (default min(K, cores))", 1)
      .opt_int("--threads", &opt->threads, "T", "threads per worker (default: library default)",
               1)
      .opt_string("--out", &opt->out_dir, "DIR", "output directory (default shard-run)")
      .opt_string("--run", &opt->run, "NAME", "run name in manifests (default shard_study)")
      .flag("--resume", &opt->resume, "skip shards whose manifest already validates")
      .opt_double("--timeout", &opt->timeout_s, "SEC",
                  "kill a worker after SEC seconds (default: none)", 0.0)
      .opt_int("--retries", &opt->retries, "R", "retries per failed shard (default 1)", 0)
      .flag("--stream", &opt->stream, "fold each shard manifest as its worker lands")
      .flag("--drop-raw", &opt->drop_raw,
            "drop raw per-chip series once reduced (aggregate omits them)")
      .flag("--no-fork", &opt->no_fork, "run shards sequentially in this process")
      .flag("--check-single", &opt->check_single, "verify merged results == single-process run")
      .opt_string("--format", &opt->format, "FMT",
                  "shard manifest transport: json or binary (default: binary for "
                  "--stream runs, json otherwise)")
      .flag("--quiet", &opt->quiet, "plain log lines even on a TTY")
      .with_env_help();
  // Worker-mode plumbing, spawned internally: parsed but kept out of --help.
  parser.flag("--worker", &opt->worker, "run one shard (internal)").hidden();
  parser
      .opt_custom("--shard", "K/N", "worker shard coordinates (internal)",
                  [opt](const std::string& v) {
                    return parse_shard_spec(v, &opt->shard_index, &opt->shards);
                  })
      .hidden();
  parser.opt_string("--manifest", &opt->manifest_path, "PATH", "worker manifest path (internal)")
      .hidden();
  parser.opt_string("--progress", &opt->progress_path, "PATH", "heartbeat JSONL path (internal)")
      .hidden();

  switch (parser.parse(argc, argv)) {
    case cli::ParseStatus::kHelp:
      std::exit(0);
    case cli::ParseStatus::kError:
      return 2;
    case cli::ParseStatus::kOk:
      break;
  }
  if (opt->worker && opt->manifest_path.empty()) {
    std::fprintf(stderr, "aropuf_shard: --worker requires --manifest\n");
    return 2;
  }
  if (!opt->format.empty() && opt->format != "json" && opt->format != "binary") {
    std::fprintf(stderr, "aropuf_shard: --format must be 'json' or 'binary' (got '%s')\n",
                 opt->format.c_str());
    return 2;
  }
  return 0;
}

/// Resolves the "" auto default: the binary transport exists for the
/// streaming (large-population) path, so --stream implies it; one-shot runs
/// keep the human-inspectable JSON form.
bool use_binary_format(const Options& opt) {
  if (opt.format.empty()) return opt.stream;
  return opt.format == "binary";
}

ShardStudyConfig study_config(const Options& opt) {
  ShardStudyConfig cfg;
  cfg.pop.chips = opt.chips;
  cfg.pop.seed = opt.seed;
  cfg.checkpoints = opt.checkpoints;
  return cfg;
}

// --- worker -----------------------------------------------------------------

/// Runs one shard of the study and writes its manifest.  Also the body of
/// each "virtual worker" in --no-fork mode, which is why telemetry state is
/// set (not assumed fresh) here and reset by the caller between shards.
int run_worker_shard(const Options& opt, int index) {
  const ShardStudyConfig cfg = study_config(opt);
  if (opt.threads > 0) ParallelExecutor::set_global_thread_count(opt.threads);
  telemetry::MetricsRegistry::global().set_shard_index(index);

  telemetry::ProgressWriter progress(opt.progress_path, index);
  progress.beat("start", 0, 0);
  try {
    ShardStudyResult result = run_shard_study(
        cfg, static_cast<std::size_t>(index), static_cast<std::size_t>(opt.shards),
        [&](const std::string& stage, std::int64_t done, std::int64_t total) {
          progress.beat(stage, done, total);
        });
    const bool binary = use_binary_format(opt);
    telemetry::set_runtime_field("shard", study_shard_descriptor(cfg, index, opt.shards));
    // Binary transport: the manifest document carries series headers only;
    // the doubles travel as packed payload blocks.  The metadata JSON must be
    // built BEFORE study_series_binary moves the values out of `result`.
    telemetry::set_runtime_field("results",
                                 study_results_to_json(result, /*include_values=*/!binary));
    bool ok;
    if (binary) {
      ok = telemetry::write_manifest_binary(opt.manifest_path, opt.run, study_config_json(cfg),
                                            study_series_binary(std::move(result)));
    } else {
      ok = telemetry::write_manifest(opt.manifest_path, opt.run, study_config_json(cfg));
    }
    progress.beat(ok ? "done" : "failed", 1, 1);
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "aropuf_shard: shard %d failed: %s\n", index, e.what());
    progress.beat("failed", 0, 0);
    return 1;
  }
}

// --- orchestrator -----------------------------------------------------------

struct ShardState {
  enum class Phase { kPending, kRunning, kDone, kFailed, kSkipped };
  Phase phase = Phase::kPending;
  std::string manifest;
  int attempts = 0;
  long pid = -1;
  Clock::time_point started{};
  double wall_s = 0.0;
  // Latest heartbeat.
  std::string stage = "-";
  std::int64_t done = 0;
  std::int64_t total = 0;
};

const char* phase_name(ShardState::Phase p) {
  switch (p) {
    case ShardState::Phase::kPending: return "pending";
    case ShardState::Phase::kRunning: return "running";
    case ShardState::Phase::kDone: return "done";
    case ShardState::Phase::kFailed: return "failed";
    case ShardState::Phase::kSkipped: return "skipped";
  }
  return "?";
}

bool make_output_dir(const std::string& path) {
#if defined(_WIN32)
  return _mkdir(path.c_str()) == 0 || errno == EEXIST;
#else
  return ::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST;
#endif
}

bool stdout_is_tty() {
#if defined(AROPUF_HAVE_FORK)
  return ::isatty(STDOUT_FILENO) != 0;
#else
  return false;
#endif
}

/// Terminal HUD: one line per shard plus a summary, redrawn in place.  When
/// the terminal is not a TTY (CI logs), falls back to printing one plain
/// line per state/stage transition instead.
class Hud {
 public:
  Hud(bool fancy, std::size_t shard_count) : fancy_(fancy), last_logged_(shard_count) {}

  void render(const std::vector<ShardState>& shards, const Clock::time_point& t0) {
    if (fancy_) {
      render_fancy(shards, t0);
    } else {
      render_plain(shards, t0);
    }
  }

  /// Declares work complete before this run started (resumed/skipped
  /// shards), in shard units.  Keeps the ETA honest after --resume: without
  /// it the skipped shards' work is credited to the current elapsed time and
  /// the printed ETA is stale (far too optimistic).
  void add_baseline(double shard_units) { eta_.add_baseline(shard_units); }

  void finish() {
    // Leave the final HUD frame in the scrollback.
    if (fancy_) std::fflush(stdout);
  }

 private:
  /// This shard's progress in [0, 1]: finished/skipped shards count as a
  /// full unit even when they never reported work totals (resumed shards
  /// write no heartbeats).
  static double shard_progress(const ShardState& s) {
    if (s.phase == ShardState::Phase::kDone || s.phase == ShardState::Phase::kSkipped) {
      return 1.0;
    }
    if (s.total <= 0) return 0.0;
    return std::min(1.0, static_cast<double>(s.done) / static_cast<double>(s.total));
  }

  static std::string progress_bar(std::int64_t done, std::int64_t total, int width) {
    const double frac =
        total > 0 ? static_cast<double>(done) / static_cast<double>(total) : 0.0;
    const int fill = static_cast<int>(frac * width + 0.5);
    std::string bar = "[";
    for (int i = 0; i < width; ++i) bar += i < fill ? '#' : '.';
    bar += ']';
    return bar;
  }

  /// Summary line shared by both render modes: "<f>/<N> shards finished |
  /// <p>% | elapsed <e>s[ | eta <t>s]".  Progress is measured in shard
  /// units (each shard's fractional progress sums toward N) so resumed
  /// shards — which report no work totals — still count; the ETA excludes
  /// them via the estimator baseline.
  std::string summary_line(const std::vector<ShardState>& shards, const Clock::time_point& t0,
                           std::size_t* finished_out) {
    double done_units = 0.0;
    std::size_t finished = 0;
    for (const ShardState& s : shards) {
      done_units += shard_progress(s);
      if (s.phase == ShardState::Phase::kDone || s.phase == ShardState::Phase::kSkipped) {
        ++finished;
      }
    }
    const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
    const double total_units = static_cast<double>(shards.size());
    const double frac = total_units > 0.0 ? done_units / total_units : 0.0;
    const double eta = eta_.eta_seconds(done_units, total_units, elapsed);
    char summary[160];
    if (eta >= 0.0) {
      std::snprintf(summary, sizeof summary,
                    "%zu/%zu shards finished | %.0f%% | elapsed %.1fs | eta %.1fs", finished,
                    shards.size(), frac * 100.0, elapsed, eta);
    } else {
      std::snprintf(summary, sizeof summary, "%zu/%zu shards finished | %.0f%% | elapsed %.1fs",
                    finished, shards.size(), frac * 100.0, elapsed);
    }
    if (finished_out != nullptr) *finished_out = finished;
    return summary;
  }

  void render_fancy(const std::vector<ShardState>& shards, const Clock::time_point& t0) {
    std::string frame;
    for (std::size_t k = 0; k < shards.size(); ++k) {
      const ShardState& s = shards[k];
      char line[160];
      std::snprintf(line, sizeof line, "  shard %-3zu %-8s %s %5lld/%-5lld %s", k,
                    phase_name(s.phase), progress_bar(s.done, s.total, 24).c_str(),
                    static_cast<long long>(s.done), static_cast<long long>(s.total),
                    s.stage.c_str());
      frame += line;
      frame += '\n';
    }
    frame += "  " + summary_line(shards, t0, nullptr) + "\n";

    const std::size_t lines = shards.size() + 1;
    if (drawn_) std::printf("\x1b[%zuF", lines);  // cursor to frame start
    // Clear each line before rewriting so shrinking text leaves no residue.
    std::istringstream in(frame);
    std::string line;
    while (std::getline(in, line)) std::printf("\x1b[2K%s\n", line.c_str());
    std::fflush(stdout);
    drawn_ = true;
  }

  void render_plain(const std::vector<ShardState>& shards, const Clock::time_point& t0) {
    for (std::size_t k = 0; k < shards.size(); ++k) {
      const ShardState& s = shards[k];
      const std::string key = std::string(phase_name(s.phase)) + "|" + s.stage + "|" +
                              std::to_string(s.done) + "/" + std::to_string(s.total);
      if (key == last_logged_[k]) continue;
      last_logged_[k] = key;
      std::printf("shard %zu: %s %s (%lld/%lld)\n", k, phase_name(s.phase), s.stage.c_str(),
                  static_cast<long long>(s.done), static_cast<long long>(s.total));
      std::fflush(stdout);
    }
    // One summary line (with the baseline-corrected ETA) per newly finished
    // shard — progress for CI logs without per-poll spam.
    std::size_t finished = 0;
    const std::string summary = summary_line(shards, t0, &finished);
    if (finished != last_plain_finished_ && finished > 0 && finished < shards.size()) {
      last_plain_finished_ = finished;
      std::printf("progress: %s\n", summary.c_str());
      std::fflush(stdout);
    }
  }

  bool fancy_;
  bool drawn_ = false;
  std::vector<std::string> last_logged_;
  std::size_t last_plain_finished_ = 0;
  telemetry::EtaEstimator eta_;
};

std::string shard_manifest_path(const Options& opt, int index) {
  return opt.out_dir + "/shard-" + std::to_string(index) +
         (use_binary_format(opt) ? ".manifest.bin" : ".manifest.json");
}

#if defined(AROPUF_HAVE_FORK)
/// Spawns one worker as a child process: self-exec with --worker.  Returns
/// the pid, or -1 with a message on stderr.
long spawn_worker(const std::string& exe, const Options& opt, int index) {
  std::vector<std::string> args = {
      exe,
      "--worker",
      "--shard",
      std::to_string(index) + "/" + std::to_string(opt.shards),
      "--chips",
      std::to_string(opt.chips),
      "--seed",
      std::to_string(opt.seed),
      "--run",
      opt.run,
      "--manifest",
      shard_manifest_path(opt, index),
      "--progress",
      opt.progress_path,
      "--format",
      use_binary_format(opt) ? "binary" : "json",
  };
  {
    std::string csv;
    for (std::size_t i = 0; i < opt.checkpoints.size(); ++i) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%g", opt.checkpoints[i]);
      if (i > 0) csv += ',';
      csv += buf;
    }
    args.push_back("--checkpoints");
    args.push_back(csv);
  }
  if (opt.threads > 0) {
    args.push_back("--threads");
    args.push_back(std::to_string(opt.threads));
  }

  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    std::fprintf(stderr, "aropuf_shard: fork failed: %s\n", std::strerror(errno));
    return -1;
  }
  if (pid == 0) {
    ::execv(exe.c_str(), argv.data());
    std::fprintf(stderr, "aropuf_shard: exec %s failed: %s\n", exe.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

/// Resolves the path this binary can be re-exec'd from.
std::string self_executable(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}
#endif  // AROPUF_HAVE_FORK

void apply_heartbeats(telemetry::ProgressReader& reader, std::vector<ShardState>* shards) {
  for (const telemetry::Heartbeat& beat : reader.poll()) {
    if (beat.shard < 0 || static_cast<std::size_t>(beat.shard) >= shards->size()) continue;
    ShardState& s = (*shards)[static_cast<std::size_t>(beat.shard)];
    // "folded" is set by the orchestrator in --stream mode after the worker's
    // terminal beat; a late-polled "done" must not clobber it in the HUD.
    if (s.stage == "folded") continue;
    s.stage = beat.stage;
    // "start"/terminal beats carry 0/0 or 1/1 — keep the last real totals so
    // the HUD's aggregate fraction stays meaningful.
    if (beat.total > 0 || (beat.done == 0 && s.total == 0)) {
      s.done = beat.done;
      s.total = beat.total;
    }
    if (beat.stage == "done" && s.total > 0) s.done = s.total;
  }
}


int run_orchestrator(const Options& opt_in, const char* argv0) {
  Options opt = opt_in;
#if !defined(AROPUF_HAVE_FORK)
  opt.no_fork = true;  // no process spawning on this platform
  (void)argv0;
#endif
  if (opt.jobs <= 0) {
    opt.jobs = std::max(1, std::min<int>(opt.shards, static_cast<int>(
                                                         std::thread::hardware_concurrency())));
  }
  if (!make_output_dir(opt.out_dir)) {
    std::fprintf(stderr, "aropuf_shard: cannot create output directory %s\n",
                 opt.out_dir.c_str());
    return 1;
  }
  opt.progress_path = opt.out_dir + "/progress.jsonl";
  {
    // Fresh progress log per run; workers append from here on.
    std::FILE* f = std::fopen(opt.progress_path.c_str(), "w");
    if (f != nullptr) std::fclose(f);
  }

  const ShardStudyConfig cfg = study_config(opt);
  const telemetry::RawSeriesPolicy policy = opt.drop_raw
                                                ? telemetry::RawSeriesPolicy::kDropAfterCheck
                                                : telemetry::RawSeriesPolicy::kKeep;
  std::vector<ShardState> shards(static_cast<std::size_t>(opt.shards));
  std::optional<telemetry::AggregateBuilder> builder;
  if (opt.stream) builder.emplace(policy);
  // Folds shard k's manifest into the streaming builder as soon as its worker
  // lands.  add() is transactional, so a failed fold leaves the builder
  // intact and the shard can be re-run and folded again via the retry path.
  const auto fold_shard = [&](std::size_t k) -> bool {
    ShardState& s = shards[k];
    try {
      builder->add(telemetry::load_shard_input(s.manifest));
      s.stage = "folded";
      return true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "aropuf_shard: fold of shard %zu failed: %s\n", k, e.what());
      return false;
    }
  };
  std::deque<int> pending;
  for (int k = 0; k < opt.shards; ++k) {
    ShardState& s = shards[static_cast<std::size_t>(k)];
    s.manifest = shard_manifest_path(opt, k);
    std::string why;
    if (opt.resume &&
        telemetry::shard_manifest_is_valid(s.manifest, opt.run, k, opt.shards, &why)) {
      if (builder && !fold_shard(static_cast<std::size_t>(k))) {
        std::printf("shard %d: re-running (existing manifest would not fold)\n", k);
        pending.push_back(k);
        continue;
      }
      s.phase = ShardState::Phase::kSkipped;
      s.stage = builder ? "resumed+folded" : "resumed";
      std::printf("shard %d: valid manifest found, skipping (resume)\n", k);
    } else {
      if (opt.resume && !why.empty()) {
        std::printf("shard %d: re-running (%s)\n", k, why.c_str());
      }
      pending.push_back(k);
    }
  }

  telemetry::ProgressReader reader(opt.progress_path);
  Hud hud(stdout_is_tty() && !opt.quiet, shards.size());
  // Resumed shards finished in a previous run; pin them as the ETA baseline
  // so the estimate reflects only the remaining jobs' rate.
  for (const ShardState& s : shards) {
    if (s.phase == ShardState::Phase::kSkipped) hud.add_baseline(1.0);
  }
  const Clock::time_point t0 = Clock::now();

  if (opt.no_fork) {
    // Sequential in-process fallback: each shard still produces its own
    // honest manifest because telemetry state is reset in between.
    for (std::size_t k = 0; k < shards.size(); ++k) {
      ShardState& s = shards[k];
      if (s.phase == ShardState::Phase::kSkipped) continue;
      s.phase = ShardState::Phase::kRunning;
      telemetry::reset_run_record();
      telemetry::MetricsRegistry::global().reset();
      Options worker = opt;
      worker.manifest_path = s.manifest;
      const int rc = run_worker_shard(worker, static_cast<int>(k));
      apply_heartbeats(reader, &shards);
      bool ok = rc == 0;
      if (ok && builder) ok = fold_shard(k);
      s.phase = ok ? ShardState::Phase::kDone : ShardState::Phase::kFailed;
      hud.render(shards, t0);
    }
    telemetry::reset_run_record();
    telemetry::MetricsRegistry::global().reset();
  } else {
#if defined(AROPUF_HAVE_FORK)
    const std::string exe = self_executable(argv0);
    int running = 0;
    std::size_t unfinished = 0;
    for (const ShardState& s : shards) {
      if (s.phase == ShardState::Phase::kPending) ++unfinished;
    }
    while (unfinished > 0) {
      while (running < opt.jobs && !pending.empty()) {
        const int k = pending.front();
        pending.pop_front();
        ShardState& s = shards[static_cast<std::size_t>(k)];
        s.pid = spawn_worker(exe, opt, k);
        if (s.pid < 0) {
          s.phase = ShardState::Phase::kFailed;
          --unfinished;
          continue;
        }
        s.phase = ShardState::Phase::kRunning;
        s.started = Clock::now();
        ++s.attempts;
        ++running;
      }

      // Reap any exited workers without blocking.
      int status = 0;
      pid_t reaped;
      while ((reaped = ::waitpid(-1, &status, WNOHANG)) > 0) {
        for (std::size_t k = 0; k < shards.size(); ++k) {
          ShardState& s = shards[k];
          if (s.pid != reaped) continue;
          s.pid = -1;
          s.wall_s = std::chrono::duration<double>(Clock::now() - s.started).count();
          --running;
          bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
          // A manifest that will not fold is as fatal as a crashed worker:
          // route it through the same retry budget.
          if (ok && builder) ok = fold_shard(k);
          if (ok) {
            s.phase = ShardState::Phase::kDone;
            --unfinished;
          } else if (s.attempts <= opt.retries) {
            std::printf("shard %zu: attempt %d failed, retrying\n", k, s.attempts);
            s.phase = ShardState::Phase::kPending;
            s.stage = "retrying";
            pending.push_back(static_cast<int>(k));
          } else {
            std::fprintf(stderr, "shard %zu: failed after %d attempts\n", k, s.attempts);
            s.phase = ShardState::Phase::kFailed;
            --unfinished;
          }
          break;
        }
      }

      // Enforce per-shard timeouts.
      if (opt.timeout_s > 0.0) {
        for (std::size_t k = 0; k < shards.size(); ++k) {
          ShardState& s = shards[k];
          if (s.phase != ShardState::Phase::kRunning || s.pid < 0) continue;
          const double elapsed =
              std::chrono::duration<double>(Clock::now() - s.started).count();
          if (elapsed > opt.timeout_s) {
            std::fprintf(stderr, "shard %zu: timed out after %.1fs, killing pid %ld\n", k,
                         elapsed, s.pid);
            ::kill(static_cast<pid_t>(s.pid), SIGKILL);
            // The kill surfaces as a non-zero exit on the next reap, which
            // routes through the normal retry/fail path above.
          }
        }
      }

      apply_heartbeats(reader, &shards);
      hud.render(shards, t0);
      struct timespec ts{0, 100 * 1000 * 1000};  // 100 ms
      ::nanosleep(&ts, nullptr);
    }
#endif  // AROPUF_HAVE_FORK
  }

  apply_heartbeats(reader, &shards);
  hud.render(shards, t0);
  hud.finish();
  if (reader.malformed_lines() > 0) {
    std::fprintf(stderr, "aropuf_shard: skipped %zu malformed progress lines\n",
                 reader.malformed_lines());
  }

  bool any_failed = false;
  for (std::size_t k = 0; k < shards.size(); ++k) {
    if (shards[k].phase == ShardState::Phase::kFailed) {
      std::fprintf(stderr, "aropuf_shard: shard %zu failed; no aggregate written\n", k);
      any_failed = true;
    }
  }
  if (any_failed) return 1;

  // --- merge ---------------------------------------------------------------
  telemetry::AggregateResult merged;
  if (builder) {
    // Everything already folded as workers landed; the peak window size is
    // the measurable bounded-memory claim (CI asserts peak < total).
    std::printf(
        "stream: folded %d/%d shards as workers landed; raw-series window peak %zu of %zu "
        "values (policy %s)\n",
        builder->shards_added(), opt.shards, builder->peak_buffered_values(),
        builder->reduced_values(), opt.drop_raw ? "drop_after_check" : "keep");
    try {
      merged = builder->finalize();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "aropuf_shard: aggregation failed: %s\n", e.what());
      return 1;
    }
  } else {
    // One-shot merge goes through the same decoded-shard fold as --stream, so
    // both transports and both merge modes share a single aggregation path.
    telemetry::AggregateBuilder one_shot(policy);
    try {
      for (const ShardState& s : shards) {
        one_shot.add(telemetry::load_shard_input(s.manifest));
      }
      merged = one_shot.finalize();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "aropuf_shard: aggregation failed: %s\n", e.what());
      return 1;
    }
  }

  merged.manifest.as_object()["study"] = build_study_section(merged.manifest, cfg);

  const std::string merged_path = opt.out_dir + "/merged.manifest.json";
  if (!telemetry::write_aggregate_manifest(merged_path, merged.manifest)) {
    // Name the path on stderr unconditionally (the telemetry error log can be
    // suppressed) and abort: a truncated aggregate must never reach the
    // conflict scan or --check-single.
    std::fprintf(stderr, "aropuf_shard: failed to write aggregate manifest to %s\n",
                 merged_path.c_str());
    return 1;
  }
  std::printf("aropuf_shard: merged manifest written to %s\n", merged_path.c_str());

  if (!merged.conflicts.empty()) {
    for (const telemetry::AggregateConflict& c : merged.conflicts) {
      std::fprintf(stderr, "aropuf_shard: provenance conflict on '%s' across shards:\n",
                   c.field.c_str());
      for (const auto& [shard, value] : c.values) {
        std::fprintf(stderr, "    shard %d: %s\n", shard, value.c_str());
      }
    }
    return 1;
  }

  if (opt.check_single && !check_merged_against_single(cfg, opt.run, merged.manifest, policy)) {
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (const int rc = parse_args(argc, argv, &opt); rc != 0) return rc;
  // Both the orchestrator and each forked worker profile themselves
  // (AROPUF_PROF is inherited; AROPUF_PROF_RESOURCE supports a %p pid
  // placeholder so workers don't clobber one timeline).
  telemetry::start_process_profile();
  const int rc = opt.worker ? run_worker_shard(opt, opt.shard_index)
                            : run_orchestrator(opt, argv[0]);
  const bool prof_ok = telemetry::stop_process_profile();
  return rc != 0 ? rc : (prof_ok ? 0 : 1);
}
