// aropuf_report: renders a merged aggregate manifest as a self-contained
// run report — one HTML file (inline CSS, inline SVG charts, no external
// assets, safe to attach as a CI artifact) and a Markdown twin for review
// comments and terminals.
//
// The report derives everything from the aggregate manifest written by
// aropuf_shard; it never re-runs any simulation.  Sections:
//   * headline — per-design uniqueness (vs the paper's 49.67 %), end-of-life
//     flip rates, and the ECC/area comparison from the "study" section;
//   * shard health — per-shard wall time, thread count, kernel backend, and
//     any provenance conflicts the aggregator flagged;
//   * stage timing — the merged per-stage wall/CPU rollup;
//   * distributions — SVG histograms of the merged sample/tally series.
//
// A second mode, --dump PATH, decodes a *shard* manifest of either transport
// (JSON or the ARPB binary container) and prints it as JSON with the series
// values re-embedded — the debugging escape hatch for binary shard files.
//
// Exit codes: 0 success, 1 unreadable manifest or write failure, 2 usage.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "telemetry/binfmt.hpp"

namespace {

using aropuf::JsonValue;
namespace cli = aropuf::cli;

struct Options {
  std::string manifest_path;
  std::string html_path;
  std::string md_path;
  std::string dump_path;
  std::string fleet_metrics_path;
};

int parse_args(int argc, char** argv, Options* opt) {
  cli::Parser parser("aropuf_report",
                     "renders a merged aggregate manifest as an HTML and/or Markdown report");
  parser
      .opt_string("--manifest", &opt->manifest_path, "PATH",
                  "aggregate manifest to render (required)")
      .opt_string("--html", &opt->html_path, "PATH", "HTML output path")
      .opt_string("--md", &opt->md_path, "PATH", "Markdown output path")
      .opt_string("--dump", &opt->dump_path, "PATH",
                  "decode a shard manifest (JSON or binary) and print it as JSON")
      .opt_string("--fleet-metrics", &opt->fleet_metrics_path, "PATH",
                  "fleet_metrics.json from aropuf_fleet: adds a fleet-health section");
  switch (parser.parse(argc, argv)) {
    case cli::ParseStatus::kHelp:
      std::exit(0);
    case cli::ParseStatus::kError:
      return 2;
    case cli::ParseStatus::kOk:
      break;
  }
  if (!opt->dump_path.empty()) return 0;
  if (opt->manifest_path.empty() || (opt->html_path.empty() && opt->md_path.empty())) {
    std::fprintf(stderr,
                 "aropuf_report: --manifest and at least one of --html / --md are required "
                 "(or --dump PATH)\n");
    parser.print_usage(stderr);
    return 2;
  }
  return 0;
}

/// --dump: shard manifest of either transport → indented JSON on stdout.
/// Binary containers get their packed values re-embedded under
/// results.samples.<name>.values, so the output is exactly what the JSON
/// transport would have written.
int dump_shard_manifest(const std::string& path) {
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) throw std::runtime_error("cannot open file");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string bytes = buffer.str();
    JsonValue doc;
    if (aropuf::telemetry::looks_binary(bytes)) {
      doc = aropuf::telemetry::BinaryManifestReader::parse(std::move(bytes)).to_json();
    } else {
      doc = JsonValue::parse(bytes);
    }
    std::printf("%s\n", doc.dump(/*indent=*/2).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "aropuf_report: %s: %s\n", path.c_str(), e.what());
    return 1;
  }
}

/// "kept" / "dropped" from a v2 aggregate; v1 documents predate the marker
/// (and never embedded raw values), so they render as "n/a (schema v1)".
std::string raw_series_label(const JsonValue& doc) {
  const std::string marker = doc.string_or("raw_series", "");
  return marker.empty() ? "n/a (schema v1)" : marker;
}

std::string escape_html(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt(double v, int decimals = 3) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt_g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

// --- headline rows (shared between HTML and Markdown) -----------------------

struct Row {
  std::string metric;
  std::string conventional;
  std::string aro;
  std::string note;
};

std::vector<Row> headline_rows(const JsonValue& doc) {
  std::vector<Row> rows;
  if (!doc.contains("study") || !doc.at("study").is_object()) return rows;
  const JsonValue& study = doc.at("study");
  const auto design = [&](const char* key) -> const JsonValue* {
    if (study.contains("designs") && study.at("designs").contains(key)) {
      return &study.at("designs").at(key);
    }
    return nullptr;
  };
  const JsonValue* conv = design("conventional");
  const JsonValue* aro = design("aro");
  const auto field = [](const JsonValue* d, const char* key, double scale,
                        int decimals) -> std::string {
    if (d == nullptr || !d->contains(key)) return "-";
    return fmt(d->number_or(key, 0.0) * scale, decimals);
  };
  const std::string year = fmt_g(study.number_or("final_year", 0.0));
  rows.push_back({"Uniqueness (%), ideal 50, paper 49.67", field(conv, "uniqueness_percent", 1, 2),
                  field(aro, "uniqueness_percent", 1, 2), "E3 mean pairwise fractional HD"});
  rows.push_back({"Uniqueness stddev (%)", field(conv, "uniqueness_stddev_percent", 1, 2),
                  field(aro, "uniqueness_stddev_percent", 1, 2), ""});
  rows.push_back({"Uniformity (fraction of ones)", field(conv, "uniformity_mean", 1, 4),
                  field(aro, "uniformity_mean", 1, 4), "ideal 0.5"});
  rows.push_back({"Mean flip rate @ " + year + "y (%)", field(conv, "eol_flip_percent_mean", 1, 3),
                  field(aro, "eol_flip_percent_mean", 1, 3), "E2 vs fresh golden response"});
  rows.push_back({"Max chip flip rate @ " + year + "y (%)", field(conv, "eol_flip_percent_max", 1, 3),
                  field(aro, "eol_flip_percent_max", 1, 3), ""});
  rows.push_back({"Provisioning BER p90", field(conv, "eol_ber_p90", 1, 5),
                  field(aro, "eol_ber_p90", 1, 5), "mean + 1.282 sigma, fraction"});

  if (study.contains("ecc") && study.at("ecc").string_or("status", "") == "ok") {
    const JsonValue& ecc = study.at("ecc");
    const auto scheme = [&](const char* key, const char* field_name) -> std::string {
      if (!ecc.contains(key)) return "-";
      const JsonValue& s = ecc.at(key);
      if (std::string(field_name) == "scheme") {
        return "rep" + fmt_g(s.number_or("repetition", 0)) + " + BCH(m=" +
               fmt_g(s.number_or("bch_m", 0)) + ", t=" + fmt_g(s.number_or("bch_t", 0)) + ")";
      }
      return fmt_g(s.number_or(field_name, 0.0));
    };
    rows.push_back({"Min-area ECC scheme", scheme("conventional", "scheme"),
                    scheme("aro", "scheme"), "128-bit key, 1e-6 failure target"});
    rows.push_back({"ECC raw bits", scheme("conventional", "raw_bits"), scheme("aro", "raw_bits"),
                    ""});
    rows.push_back({"ECC total area (GE)", scheme("conventional", "area_ge"),
                    scheme("aro", "area_ge"),
                    "area ratio conv/ARO = " + fmt(ecc.number_or("area_ratio", 0.0), 1) +
                        "x (paper ~24x)"});
  } else if (study.contains("ecc")) {
    rows.push_back({"ECC comparison", "-", "-",
                    "failed: " + study.at("ecc").string_or("error", "unknown")});
  }
  return rows;
}

// --- SVG histogram ----------------------------------------------------------

std::string svg_histogram(const JsonValue& hist, const std::string& title) {
  if (!hist.contains("bins") || !hist.at("bins").is_array()) return "";
  const JsonValue::Array& bins = hist.at("bins").as_array();
  const double lo = hist.number_or("lo", hist.number_or("hist_lo", 0.0));
  const double hi = hist.number_or("hi", hist.number_or("hist_hi", 1.0));
  double peak = 0.0;
  for (const JsonValue& b : bins) {
    if (b.is_number()) peak = std::max(peak, b.as_number());
  }
  const int w = 520;
  const int h = 140;
  const int pad = 24;
  const double bar_w = bins.empty() ? 0.0 : static_cast<double>(w - 2 * pad) / bins.size();
  std::ostringstream svg;
  svg << "<svg viewBox=\"0 0 " << w << ' ' << h << "\" class=\"hist\" role=\"img\" "
      << "aria-label=\"" << escape_html(title) << "\">";
  svg << "<line x1=\"" << pad << "\" y1=\"" << h - pad << "\" x2=\"" << w - pad << "\" y2=\""
      << h - pad << "\" stroke=\"#888\"/>";
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const double v = bins[i].is_number() ? bins[i].as_number() : 0.0;
    const double bh = peak > 0.0 ? (v / peak) * (h - 2 * pad) : 0.0;
    svg << "<rect x=\"" << fmt(pad + i * bar_w, 1) << "\" y=\"" << fmt(h - pad - bh, 1)
        << "\" width=\"" << fmt(std::max(bar_w - 1.0, 0.5), 1) << "\" height=\"" << fmt(bh, 1)
        << "\"><title>[" << fmt_g(lo + (hi - lo) * i / bins.size()) << ", "
        << fmt_g(lo + (hi - lo) * (i + 1) / bins.size()) << "): " << fmt_g(v)
        << "</title></rect>";
  }
  svg << "<text x=\"" << pad << "\" y=\"" << h - 6 << "\">" << fmt_g(lo) << "</text>";
  svg << "<text x=\"" << w - pad << "\" y=\"" << h - 6 << "\" text-anchor=\"end\">" << fmt_g(hi)
      << "</text>";
  svg << "</svg>";
  return svg.str();
}

// --- fleet health (shared between HTML and Markdown) ------------------------

/// History events worth surfacing in the report: the reassignment/failure
/// audit trail, not the routine connect/dispatch chatter.
bool is_incident(const std::string& event) {
  return event == "retry" || event == "fail" || event == "timeout" ||
         event == "disconnect";
}

void emit_fleet_health(std::ostringstream& out, const JsonValue& fleet, bool html) {
  if (!fleet.is_object()) return;
  const JsonValue empty_obj{JsonValue::Object{}};
  const JsonValue& shards = fleet.contains("shards") ? fleet.at("shards") : empty_obj;
  const double elapsed_s = fleet.number_or("elapsed_ms", 0.0) / 1000.0;
  const std::string summary =
      fmt_g(shards.number_or("done", 0.0)) + "/" + fmt_g(shards.number_or("total", 0.0)) +
      " shards done, " + fmt_g(shards.number_or("failed", 0.0)) + " failed, " +
      fmt_g(shards.number_or("reassigned", 0.0)) + " reassigned in " + fmt(elapsed_s, 1) +
      " s (trace id `" + fleet.string_or("trace_id", "?") + "`)";

  if (html) {
    out << "<h2>Fleet health</h2>\n<p>" << escape_html(summary) << "</p>\n";
    out << "<table>\n<tr><th>worker</th><th>jobs done/assigned</th><th>retries</th>"
        << "<th>utilization</th><th>busy (ms)</th><th>clock offset (ms)</th>"
        << "<th>snapshots</th><th>flags</th></tr>\n";
  } else {
    out << "\n## Fleet health\n\n" << summary << "\n\n";
    out << "| worker | jobs done/assigned | retries | utilization | busy (ms) "
        << "| clock offset (ms) | snapshots | flags |\n|---|---|---|---|---|---|---|---|\n";
  }
  if (fleet.contains("workers") && fleet.at("workers").is_array()) {
    for (const JsonValue& w : fleet.at("workers").as_array()) {
      if (!w.is_object()) continue;
      const std::string jobs =
          fmt_g(w.number_or("jobs_done", 0.0)) + "/" + fmt_g(w.number_or("jobs_assigned", 0.0));
      const std::string util = fmt(w.number_or("utilization", 0.0) * 100.0, 1) + "%";
      std::string flags;
      if (w.contains("straggler") && w.at("straggler").as_bool()) flags += "straggler ";
      if (w.contains("connected") && !w.at("connected").as_bool()) flags += "disconnected";
      if (flags.empty()) flags = "-";
      if (html) {
        out << "<tr><td><code>" << escape_html(w.string_or("name", "?")) << "</code></td><td>"
            << jobs << "</td><td>" << fmt_g(w.number_or("failed_attempts", 0.0)) << "</td><td>"
            << util << "</td><td>" << fmt(w.number_or("busy_ms", 0.0), 1) << "</td><td>"
            << fmt(w.number_or("clock_offset_ms", 0.0), 1) << "</td><td>"
            << fmt_g(w.number_or("snapshots", 0.0)) << "</td><td>" << escape_html(flags)
            << "</td></tr>\n";
      } else {
        out << "| `" << w.string_or("name", "?") << "` | " << jobs << " | "
            << fmt_g(w.number_or("failed_attempts", 0.0)) << " | " << util << " | "
            << fmt(w.number_or("busy_ms", 0.0), 1) << " | "
            << fmt(w.number_or("clock_offset_ms", 0.0), 1) << " | "
            << fmt_g(w.number_or("snapshots", 0.0)) << " | " << flags << " |\n";
      }
    }
  }
  if (html) out << "</table>\n";

  // Incident history: retries, failures, timeouts, disconnects (most recent
  // last, capped so a retry storm cannot balloon the report).
  std::vector<const JsonValue*> incidents;
  if (fleet.contains("history") && fleet.at("history").is_array()) {
    for (const JsonValue& e : fleet.at("history").as_array()) {
      if (e.is_object() && is_incident(e.string_or("event", ""))) incidents.push_back(&e);
    }
  }
  constexpr std::size_t kMaxIncidents = 25;
  const std::size_t skip = incidents.size() > kMaxIncidents
                               ? incidents.size() - kMaxIncidents
                               : 0;
  if (incidents.empty()) {
    out << (html ? "<p class=\"ok\">No retries, timeouts, or disconnects.</p>\n"
                 : "\nNo retries, timeouts, or disconnects.\n");
  } else {
    if (html) {
      out << "<h3>Reassignment / retry history</h3>\n";
      if (skip > 0) out << "<p>(" << skip << " earlier entries omitted)</p>\n";
      out << "<ul>\n";
    } else {
      out << "\n### Reassignment / retry history\n\n";
      if (skip > 0) out << "(" << skip << " earlier entries omitted)\n\n";
    }
    for (std::size_t i = skip; i < incidents.size(); ++i) {
      const JsonValue& e = *incidents[i];
      const std::string line = e.string_or("event", "?") + " shard " +
                               fmt_g(e.number_or("shard", -1.0)) + ": " +
                               e.string_or("detail", "");
      if (html) {
        out << "<li class=\"conflict\">" << escape_html(line) << "</li>\n";
      } else {
        out << "- " << line << "\n";
      }
    }
    if (html) out << "</ul>\n";
  }
}

// --- HTML -------------------------------------------------------------------

/// "Resource profile" section from the aggregate's merged "profile"
/// section (profiling layer, DESIGN.md §12): mode + peak RSS always,
/// counter totals and a per-shard breakdown when the run was profiled.
/// Omitted entirely for aggregates that predate the section.
void emit_resource_profile(std::ostringstream& out, const JsonValue& doc, bool html) {
  if (!doc.contains("profile") || !doc.at("profile").is_object()) return;
  const JsonValue& profile = doc.at("profile");
  const std::string mode = profile.string_or("mode", "off");
  const double peak_mib = profile.number_or("peak_rss_kib", 0.0) / 1024.0;
  if (mode == "off" && peak_mib <= 0.0) return;

  std::string summary = "mode `" + mode + "`, peak RSS " + fmt(peak_mib, 1) + " MiB";
  if (profile.contains("fallback_reasons") && profile.at("fallback_reasons").is_array()) {
    for (const JsonValue& r : profile.at("fallback_reasons").as_array()) {
      if (r.is_string()) summary += "; fallback: " + r.as_string();
    }
  }
  if (html) {
    out << "<h2>Resource profile</h2>\n<p>" << escape_html(summary) << "</p>\n";
  } else {
    out << "\n## Resource profile\n\n" << summary << "\n\n";
  }

  // The hardware table only makes sense when some shard actually counted:
  // a fallback run's counters object carries wall/cpu alone, and a table of
  // zero cycles would read as "this run executed nothing".
  if (profile.contains("counters") && profile.at("counters").is_object() &&
      profile.at("counters").number_or("cycles", 0.0) > 0.0) {
    const JsonValue& c = profile.at("counters");
    const std::string ipc = fmt(c.number_or("ipc", 0.0), 2);
    const std::string miss = c.contains("cache_miss_rate")
                                 ? fmt(c.number_or("cache_miss_rate", 0.0) * 100.0, 1) + "%"
                                 : std::string("n/a");
    const std::string ghz = fmt(c.number_or("ghz", 0.0), 2);
    if (html) {
      out << "<table>\n<tr><th>cycles</th><th>instructions</th><th>IPC</th>"
          << "<th>cache-miss rate</th><th>GHz</th><th>task-clock (ms)</th></tr>\n"
          << "<tr><td>" << fmt_g(c.number_or("cycles", 0.0)) << "</td><td>"
          << fmt_g(c.number_or("instructions", 0.0)) << "</td><td>" << ipc << "</td><td>"
          << miss << "</td><td>" << ghz << "</td><td>"
          << fmt(c.number_or("task_clock_ms", 0.0), 1) << "</td></tr>\n</table>\n";
    } else {
      out << "| cycles | instructions | IPC | cache-miss rate | GHz | task-clock (ms) |\n"
          << "|---|---|---|---|---|---|\n"
          << "| " << fmt_g(c.number_or("cycles", 0.0)) << " | "
          << fmt_g(c.number_or("instructions", 0.0)) << " | " << ipc << " | " << miss << " | "
          << ghz << " | " << fmt(c.number_or("task_clock_ms", 0.0), 1) << " |\n";
    }
  }

  if (profile.contains("per_shard") && profile.at("per_shard").is_object() &&
      !profile.at("per_shard").as_object().empty()) {
    if (html) {
      out << "<table>\n<tr><th>shard</th><th>mode</th><th>peak RSS (MiB)</th><th>IPC</th>"
          << "<th>cache-miss rate</th></tr>\n";
    } else {
      out << "\n| shard | mode | peak RSS (MiB) | IPC | cache-miss rate |\n|---|---|---|---|---|\n";
    }
    for (const auto& [shard, p] : profile.at("per_shard").as_object()) {
      if (!p.is_object()) continue;
      std::string ipc = "n/a";
      std::string miss = "n/a";
      if (p.contains("counters") && p.at("counters").is_object()) {
        const JsonValue& c = p.at("counters");
        if (c.contains("ipc")) ipc = fmt(c.number_or("ipc", 0.0), 2);
        if (c.contains("cache_miss_rate")) {
          miss = fmt(c.number_or("cache_miss_rate", 0.0) * 100.0, 1) + "%";
        }
      }
      const std::string shard_mode = p.string_or("mode", "off");
      const double shard_mib = p.number_or("peak_rss_kib", 0.0) / 1024.0;
      if (html) {
        out << "<tr><td>" << escape_html(shard) << "</td><td>" << escape_html(shard_mode)
            << "</td><td>" << fmt(shard_mib, 1) << "</td><td>" << ipc << "</td><td>" << miss
            << "</td></tr>\n";
      } else {
        out << "| " << shard << " | " << shard_mode << " | " << fmt(shard_mib, 1) << " | "
            << ipc << " | " << miss << " |\n";
      }
    }
    if (html) out << "</table>\n";
  }
}

void emit_series_summary_rows(std::ostringstream& out, const JsonValue& section, bool html) {
  for (const auto& [name, s] : section.as_object()) {
    if (!s.is_object()) continue;
    if (html) {
      out << "<tr><td><code>" << escape_html(name) << "</code></td><td>"
          << fmt_g(s.number_or("count", 0.0)) << "</td><td>" << fmt(s.number_or("mean", 0.0), 5)
          << "</td><td>" << fmt(s.number_or("stddev", 0.0), 5) << "</td><td>"
          << fmt(s.number_or("min", 0.0), 5) << "</td><td>" << fmt(s.number_or("max", 0.0), 5)
          << "</td></tr>\n";
    } else {
      out << "| `" << name << "` | " << fmt_g(s.number_or("count", 0.0)) << " | "
          << fmt(s.number_or("mean", 0.0), 5) << " | " << fmt(s.number_or("stddev", 0.0), 5)
          << " | " << fmt(s.number_or("min", 0.0), 5) << " | " << fmt(s.number_or("max", 0.0), 5)
          << " |\n";
    }
  }
}

std::string render_html(const JsonValue& doc, const JsonValue& fleet) {
  std::ostringstream out;
  const std::string run = escape_html(doc.string_or("run", "?"));
  out << "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n"
      << "<title>ARO-PUF run report: " << run << "</title>\n<style>\n"
      << "body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:60em;"
      << "color:#1a1a1a;padding:0 1em}\n"
      << "h1{font-size:1.5em}h2{font-size:1.15em;margin-top:2em;border-bottom:1px solid #ddd}\n"
      << "table{border-collapse:collapse;width:100%;margin:.8em 0}\n"
      << "th,td{border:1px solid #ddd;padding:.35em .6em;text-align:left}\n"
      << "th{background:#f5f5f5}code{background:#f2f2f2;padding:0 .2em}\n"
      << ".hist{width:520px;max-width:100%}.hist rect{fill:#4a78b0}\n"
      << ".hist text{font-size:10px;fill:#666}\n"
      << ".conflict{color:#a00;font-weight:bold}.ok{color:#060}\n"
      << "</style></head><body>\n";

  out << "<h1>ARO-PUF sharded run report</h1>\n<table>\n";
  out << "<tr><th>run</th><td>" << run << "</td></tr>\n";
  out << "<tr><th>chips</th><td>" << fmt_g(doc.number_or("chips", 0.0)) << "</td></tr>\n";
  out << "<tr><th>shards</th><td>" << fmt_g(doc.number_or("shard_count", 0.0)) << "</td></tr>\n";
  out << "<tr><th>git sha</th><td><code>" << escape_html(doc.string_or("git_sha", "?"))
      << "</code></td></tr>\n";
  out << "<tr><th>raw series</th><td>" << escape_html(raw_series_label(doc))
      << "</td></tr>\n";
  out << "</table>\n";

  out << "<h2>Headline results</h2>\n<table>\n"
      << "<tr><th>metric</th><th>conventional</th><th>ARO</th><th>notes</th></tr>\n";
  for (const Row& r : headline_rows(doc)) {
    out << "<tr><td>" << escape_html(r.metric) << "</td><td>" << escape_html(r.conventional)
        << "</td><td>" << escape_html(r.aro) << "</td><td>" << escape_html(r.note)
        << "</td></tr>\n";
  }
  out << "</table>\n";

  out << "<h2>Shard health</h2>\n";
  if (doc.contains("conflicts") && doc.at("conflicts").is_array() &&
      !doc.at("conflicts").as_array().empty()) {
    out << "<p class=\"conflict\">Provenance conflicts detected:</p><ul>\n";
    for (const JsonValue& c : doc.at("conflicts").as_array()) {
      out << "<li class=\"conflict\"><code>" << escape_html(c.string_or("field", "?"))
          << "</code> disagrees across shards</li>\n";
    }
    out << "</ul>\n";
  } else {
    out << "<p class=\"ok\">No provenance conflicts.</p>\n";
  }
  if (doc.contains("shards") && doc.at("shards").is_array()) {
    out << "<table>\n<tr><th>shard</th><th>chips</th><th>threads</th><th>kernel</th>"
        << "<th>wall (ms)</th><th>manifest</th></tr>\n";
    for (const JsonValue& s : doc.at("shards").as_array()) {
      out << "<tr><td>" << fmt_g(s.number_or("index", 0.0)) << "</td><td>["
          << fmt_g(s.number_or("chip_lo", 0.0)) << ", " << fmt_g(s.number_or("chip_hi", 0.0))
          << ")</td><td>" << fmt_g(s.number_or("threads", 0.0)) << "</td><td>"
          << escape_html(s.string_or("kernel_backend", "?")) << "</td><td>"
          << fmt(s.number_or("wall_ms", 0.0), 1) << "</td><td><code>"
          << escape_html(s.string_or("manifest", "?")) << "</code></td></tr>\n";
    }
    out << "</table>\n";
  }
  emit_fleet_health(out, fleet, /*html=*/true);
  emit_resource_profile(out, doc, /*html=*/true);

  if (doc.contains("stages") && doc.at("stages").is_array()) {
    out << "<h2>Stage timing (across all shards)</h2>\n<table>\n"
        << "<tr><th>stage</th><th>runs</th><th>wall sum (ms)</th><th>wall max (ms)</th>"
        << "<th>cpu sum (ms)</th></tr>\n";
    for (const JsonValue& s : doc.at("stages").as_array()) {
      out << "<tr><td><code>" << escape_html(s.string_or("name", "?")) << "</code></td><td>"
          << fmt_g(s.number_or("count", 0.0)) << "</td><td>"
          << fmt(s.number_or("wall_ms_sum", 0.0), 1) << "</td><td>"
          << fmt(s.number_or("wall_ms_max", 0.0), 1) << "</td><td>"
          << fmt(s.number_or("cpu_ms_sum", 0.0), 1) << "</td></tr>\n";
    }
    out << "</table>\n";
  }

  if (doc.contains("results") && doc.at("results").is_object()) {
    const JsonValue& results = doc.at("results");
    out << "<h2>Merged distributions</h2>\n<table>\n"
        << "<tr><th>series</th><th>count</th><th>mean</th><th>stddev</th><th>min</th>"
        << "<th>max</th></tr>\n";
    for (const char* kind : {"samples", "tallies"}) {
      if (results.contains(kind)) emit_series_summary_rows(out, results.at(kind), /*html=*/true);
    }
    out << "</table>\n";
    for (const char* kind : {"samples", "tallies"}) {
      if (!results.contains(kind)) continue;
      for (const auto& [name, s] : results.at(kind).as_object()) {
        if (!s.is_object() || !s.contains("histogram")) continue;
        out << "<h3><code>" << escape_html(name) << "</code></h3>\n"
            << svg_histogram(s.at("histogram"), name) << "\n";
      }
    }
  }

  out << "</body></html>\n";
  return out.str();
}

// --- Markdown ---------------------------------------------------------------

std::string render_markdown(const JsonValue& doc, const JsonValue& fleet) {
  std::ostringstream out;
  out << "# ARO-PUF sharded run report\n\n";
  out << "- run: `" << doc.string_or("run", "?") << "`\n";
  out << "- chips: " << fmt_g(doc.number_or("chips", 0.0)) << " across "
      << fmt_g(doc.number_or("shard_count", 0.0)) << " shards\n";
  out << "- git sha: `" << doc.string_or("git_sha", "?") << "`\n";
  out << "- raw series: " << raw_series_label(doc) << "\n\n";

  out << "## Headline results\n\n";
  out << "| metric | conventional | ARO | notes |\n|---|---|---|---|\n";
  for (const Row& r : headline_rows(doc)) {
    out << "| " << r.metric << " | " << r.conventional << " | " << r.aro << " | " << r.note
        << " |\n";
  }

  out << "\n## Shard health\n\n";
  const bool conflicts = doc.contains("conflicts") && doc.at("conflicts").is_array() &&
                         !doc.at("conflicts").as_array().empty();
  if (conflicts) {
    out << "**Provenance conflicts detected:**\n\n";
    for (const JsonValue& c : doc.at("conflicts").as_array()) {
      out << "- `" << c.string_or("field", "?") << "` disagrees across shards\n";
    }
    out << "\n";
  } else {
    out << "No provenance conflicts.\n\n";
  }
  if (doc.contains("shards") && doc.at("shards").is_array()) {
    out << "| shard | chips | threads | kernel | wall (ms) |\n|---|---|---|---|---|\n";
    for (const JsonValue& s : doc.at("shards").as_array()) {
      out << "| " << fmt_g(s.number_or("index", 0.0)) << " | ["
          << fmt_g(s.number_or("chip_lo", 0.0)) << ", " << fmt_g(s.number_or("chip_hi", 0.0))
          << ") | " << fmt_g(s.number_or("threads", 0.0)) << " | "
          << s.string_or("kernel_backend", "?") << " | " << fmt(s.number_or("wall_ms", 0.0), 1)
          << " |\n";
    }
  }
  emit_fleet_health(out, fleet, /*html=*/false);
  emit_resource_profile(out, doc, /*html=*/false);

  if (doc.contains("stages") && doc.at("stages").is_array()) {
    out << "\n## Stage timing\n\n";
    out << "| stage | runs | wall sum (ms) | wall max (ms) | cpu sum (ms) |\n|---|---|---|---|---|\n";
    for (const JsonValue& s : doc.at("stages").as_array()) {
      out << "| `" << s.string_or("name", "?") << "` | " << fmt_g(s.number_or("count", 0.0))
          << " | " << fmt(s.number_or("wall_ms_sum", 0.0), 1) << " | "
          << fmt(s.number_or("wall_ms_max", 0.0), 1) << " | "
          << fmt(s.number_or("cpu_ms_sum", 0.0), 1) << " |\n";
    }
  }

  if (doc.contains("results") && doc.at("results").is_object()) {
    out << "\n## Merged distributions\n\n";
    out << "| series | count | mean | stddev | min | max |\n|---|---|---|---|---|---|\n";
    std::ostringstream rows;
    for (const char* kind : {"samples", "tallies"}) {
      if (doc.at("results").contains(kind)) {
        emit_series_summary_rows(rows, doc.at("results").at(kind), /*html=*/false);
      }
    }
    out << rows.str();
  }
  return out.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out.is_open()) {
    std::fprintf(stderr, "aropuf_report: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (const int rc = parse_args(argc, argv, &opt); rc != 0) return rc;
  if (!opt.dump_path.empty()) return dump_shard_manifest(opt.dump_path);

  JsonValue doc;
  try {
    std::ifstream in(opt.manifest_path, std::ios::binary);
    if (!in.is_open()) throw std::runtime_error("cannot open file");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    doc = JsonValue::parse(buffer.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "aropuf_report: %s: %s\n", opt.manifest_path.c_str(), e.what());
    return 1;
  }
  if (doc.string_or("schema", "") != "aropuf-aggregate-manifest") {
    std::fprintf(stderr, "aropuf_report: %s is not an aggregate manifest (schema=%s)\n",
                 opt.manifest_path.c_str(), doc.string_or("schema", "?").c_str());
    return 1;
  }

  JsonValue fleet;  // stays non-object (section omitted) unless loaded below
  if (!opt.fleet_metrics_path.empty()) {
    try {
      std::ifstream in(opt.fleet_metrics_path, std::ios::binary);
      if (!in.is_open()) throw std::runtime_error("cannot open file");
      std::ostringstream buffer;
      buffer << in.rdbuf();
      fleet = JsonValue::parse(buffer.str());
      if (fleet.string_or("schema", "") != "aropuf-fleet-metrics") {
        throw std::runtime_error("not a fleet-metrics document (schema=" +
                                 fleet.string_or("schema", "?") + ")");
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "aropuf_report: %s: %s\n", opt.fleet_metrics_path.c_str(), e.what());
      return 1;
    }
  }

  if (!opt.html_path.empty() && !write_file(opt.html_path, render_html(doc, fleet))) return 1;
  if (!opt.md_path.empty() && !write_file(opt.md_path, render_markdown(doc, fleet))) return 1;
  std::printf("aropuf_report: report written (%s%s%s)\n",
              opt.html_path.empty() ? "" : opt.html_path.c_str(),
              (!opt.html_path.empty() && !opt.md_path.empty()) ? ", " : "",
              opt.md_path.empty() ? "" : opt.md_path.c_str());
  return 0;
}
