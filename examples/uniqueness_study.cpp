// Uniqueness study: fabricate a lot of chips and measure how well their
// responses distinguish them — inter-chip HD, uniformity, bit-aliasing —
// for both designs, plus the identification margin (can you tell any two
// chips apart by their responses?).
//
//   $ ./uniqueness_study [--chips N]     (default 60)
#include <algorithm>
#include <cstdio>

#include "common/cli.hpp"
#include "metrics/uniformity.hpp"
#include "metrics/uniqueness.hpp"
#include "puf/ro_puf.hpp"
#include "telemetry/manifest.hpp"

namespace {

void study(const char* label, const aropuf::PufConfig& cfg, int chips) {
  using namespace aropuf;
  const TechnologyParams tech = TechnologyParams::cmos90();
  const RngFabric fabric(2024);
  const auto population = make_population(tech, cfg, chips, fabric);

  std::vector<BitVector> responses;
  responses.reserve(population.size());
  for (const auto& chip : population) {
    responses.push_back(chip.evaluate(chip.nominal_op(), 0));
  }

  const auto uniq = compute_uniqueness(responses);
  const auto unif = uniformity_stats(responses);
  const auto alias = bit_aliasing_stats(responses);

  std::printf("\n--- %s (%d chips, %zu-bit responses) ---\n", label, chips,
              responses[0].size());
  std::printf("inter-chip HD: mean %.2f%%  std %.2f%%  min %.2f%%  max %.2f%%\n",
              uniq.mean_percent(), uniq.stats.stddev() * 100.0, uniq.stats.min() * 100.0,
              uniq.stats.max() * 100.0);
  std::printf("uniformity:    mean %.2f%%  std %.2f%%\n", unif.mean() * 100.0,
              unif.stddev() * 100.0);
  std::printf("bit-aliasing:  std %.2f%%  worst bias %.2f%%\n", alias.stddev() * 100.0,
              100.0 * std::max(alias.max() - 0.5, 0.5 - alias.min()));

  // Identification: with intra-chip noise ~1-2% and inter-chip HD near 50%,
  // the nearest other chip must stay far from the re-measurement noise ball.
  std::printf("identification margin: nearest pair at %.1f%% HD vs ~2%% noise ball -> %s\n",
              uniq.stats.min() * 100.0, uniq.stats.min() > 0.10 ? "safe" : "COLLISION RISK");
}

}  // namespace

int main(int argc, char** argv) {
  using aropuf::cli::Parser;
  using aropuf::cli::ParseStatus;
  int chips = 60;
  Parser parser("uniqueness_study",
                "inter-chip uniqueness, uniformity, and bit-aliasing for both designs");
  parser.opt_int("--chips", &chips, "N", "population size (>= 2)", 2).with_env_help();
  switch (parser.parse(argc, argv)) {
    case ParseStatus::kOk: break;
    case ParseStatus::kHelp: return 0;
    case ParseStatus::kError: return 2;
  }
  study("conventional RO-PUF", aropuf::PufConfig::conventional(), chips);
  study("ARO-PUF", aropuf::PufConfig::aro(), chips);
  std::printf("\nthe ARO-PUF's adjacent pairing cancels the layout systematics that\n"
              "pull the conventional design's inter-chip HD below 50%%.\n");
  return aropuf::telemetry::finalize_run("uniqueness_study",
                                         aropuf::JsonValue(aropuf::JsonValue::Object{}))
             ? 0
             : 1;
}
