// Key enrollment and field reconstruction — the deployment flow the paper's
// ECC analysis assumes, end to end:
//
//   factory:  measure golden response -> fuzzy-extractor enroll
//             -> store public helper data, derive 128-bit device key
//   field:    re-measure (noisy, aged) response + helper data
//             -> reconstruct the same key, year after year
//
//   $ ./key_enrollment
#include <cstdio>

#include "ecc/code_search.hpp"
#include "keygen/fuzzy_extractor.hpp"
#include "puf/ro_puf.hpp"
#include "telemetry/manifest.hpp"

int main() {
  using namespace aropuf;
  const TechnologyParams tech = TechnologyParams::cmos90();

  // Let the code search pick the minimum-area ECC for the ARO design's
  // provisioning error rate (see bench_e7 for where 0.12 comes from).
  const auto searched = find_min_area_scheme(tech, /*raw_ber=*/0.12, CodeSearchConstraints{});
  if (!searched.has_value()) {
    std::fprintf(stderr, "no ECC scheme found\n");
    return 1;
  }
  const ConcatenatedScheme scheme = searched->scheme;
  const FuzzyExtractor extractor(scheme);
  std::printf("ECC scheme: repetition-%d + BCH(%zu,%zu,%d) x %zu block(s), %zu raw bits\n",
              scheme.repetition, scheme.bch_n(), scheme.bch_k(), scheme.bch_t,
              scheme.blocks(), scheme.raw_bits());

  // Build an ARO chip with enough ROs to feed the extractor.
  PufConfig cfg = PufConfig::aro(static_cast<int>(2 * extractor.response_bits()));
  RoPuf chip(tech, cfg, RngFabric(7).child("chip", 0));
  const OperatingPoint op = chip.nominal_op();

  // --- Factory -------------------------------------------------------------
  Xoshiro256 trng(0xC0FFEE);  // provisioning randomness
  const BitVector golden = chip.evaluate(op, 0);
  const Enrollment enrollment = extractor.enroll(golden, trng);
  std::printf("\nenrolled device key: %s\n", Sha256::to_hex(enrollment.key).c_str());
  std::printf("helper data: %zu public bits stored in NVM\n", enrollment.helper_data.size());

  // --- Field, over ten years ------------------------------------------------
  std::printf("\nyear | raw bit errors | key reconstructed\n");
  std::printf("-----+----------------+------------------\n");
  for (int year = 0; year <= 10; year += 2) {
    if (year > 0) chip.age_years(2.0);
    const BitVector reading = chip.evaluate(op, static_cast<std::uint64_t>(1 + year));
    const auto key = extractor.reconstruct(reading, enrollment.helper_data);
    const bool ok = key.has_value() && *key == enrollment.key;
    std::printf("%4d | %8zu/%zu    | %s\n", year, hamming_distance(golden, reading),
                golden.size(), ok ? "yes" : "NO");
  }

  std::printf("\nthe same key every time: the ECC absorbs aging + noise errors.\n");
  return telemetry::finalize_run("key_enrollment", JsonValue(JsonValue::Object{})) ? 0 : 1;
}
