// Quickstart: simulate one ARO-PUF chip, read its response, age it ten
// years, and see how little changes (versus a conventional RO-PUF built on
// the *same* simulated silicon).
//
//   $ ./quickstart
//
// Walks through the core public API: TechnologyParams -> PufConfig ->
// RoPuf -> evaluate()/age_years().
#include <cstdio>

#include <optional>

#include "puf/ro_puf.hpp"
#include "telemetry/manifest.hpp"

int main() {
  using namespace aropuf;
  // Provenance for the run manifest; closed explicitly before finalize_run
  // so the stage's timing actually lands in the manifest.
  std::optional<telemetry::StageTimer> run_stage;
  run_stage.emplace("quickstart");

  // 1. Pick a technology node (the paper's: 90 nm bulk CMOS, 1.2 V).
  const TechnologyParams tech = TechnologyParams::cmos90();

  // 2. Configure the two designs.  Both use a 256-RO array producing a
  //    128-bit response; they differ in pairing and lifetime stress.
  const PufConfig aro_cfg = PufConfig::aro();
  const PufConfig conv_cfg = PufConfig::conventional();

  // 3. Fabricate a chip.  The RngFabric seed *is* the silicon: the same
  //    seed always yields the same die.  Sharing one fabric across both
  //    configs puts both designs on identical process variation.
  const RngFabric fabric(/*master_seed=*/1);
  RoPuf aro(tech, aro_cfg, fabric.child("chip", 0));
  RoPuf conv(tech, conv_cfg, fabric.child("chip", 0));

  // 4. Read the enrollment (golden) responses.
  const OperatingPoint op = aro.nominal_op();
  const BitVector aro_golden = aro.evaluate(op, /*eval_index=*/0);
  const BitVector conv_golden = conv.evaluate(op, 0);
  std::printf("ARO-PUF golden response (%zu bits):\n  %s\n", aro_golden.size(),
              aro_golden.to_string().c_str());

  // 5. Age both chips ten years under their design's stress profile:
  //    the conventional array oscillates the whole decade, the ARO array
  //    only during its ~20 daily evaluations.
  aro.age_years(10.0);
  conv.age_years(10.0);

  const BitVector aro_aged = aro.evaluate(op, 1);
  const BitVector conv_aged = conv.evaluate(op, 1);

  std::printf("\nafter 10 simulated years:\n");
  std::printf("  conventional RO-PUF: %3zu of %zu bits flipped (%.1f%%)\n",
              hamming_distance(conv_golden, conv_aged), conv_golden.size(),
              100.0 * fractional_hamming_distance(conv_golden, conv_aged));
  std::printf("  ARO-PUF:             %3zu of %zu bits flipped (%.1f%%)\n",
              hamming_distance(aro_golden, aro_aged), aro_golden.size(),
              100.0 * fractional_hamming_distance(aro_golden, aro_aged));
  std::printf("\n(paper: ~32%% vs ~7.7%% on average over a population)\n");

  // 6. Land the observability artifacts: the run manifest (AROPUF_MANIFEST)
  //    and the Chrome-trace file (AROPUF_TRACE).  A failed write is a failed
  //    run — CI validates both files, so report it in the exit code.
  run_stage.reset();
  JsonValue::Object config;
  config["seed"] = JsonValue(static_cast<std::uint64_t>(1));
  config["technology"] = JsonValue(tech.name);
  config["years_aged"] = JsonValue(10.0);
  return telemetry::finalize_run("quickstart", JsonValue(std::move(config))) ? 0 : 1;
}
