// Aging explorer: a what-if CLI over usage profiles.
//
// How hard can you use an ARO-PUF before gating stops saving you?  Sweep
// evaluations-per-day across six orders of magnitude and watch the 10-year
// flip rate climb from the noise floor back toward the conventional value.
//
//   $ ./aging_explorer [--years Y] [--chips N]   (defaults: 10 years, 15 chips)
//   $ ./aging_explorer --config pop.json [--years Y]
//
// With --config, the population (technology overrides, chip count, seed)
// comes from a JSON file; see src/sim/experiment_config.hpp for the schema.
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/experiment_config.hpp"
#include "sim/scenarios.hpp"
#include "telemetry/manifest.hpp"

int main(int argc, char** argv) {
  using namespace aropuf;
  PopulationConfig pop;
  pop.chips = 15;
  pop.seed = 11;
  double lifetime = 10.0;
  int chips = 0;  // 0 = keep the population default
  std::string config_path;

  cli::Parser parser("aging_explorer",
                     "10-year flip rate vs usage intensity for the gated ARO design");
  parser.opt_double("--years", &lifetime, "Y", "deployment lifetime in years", 0.0)
      .opt_int("--chips", &chips, "N", "population size (>= 2)", 0)
      .opt_string("--config", &config_path, "FILE", "population config JSON")
      .with_env_help();
  switch (parser.parse(argc, argv)) {
    case cli::ParseStatus::kOk: break;
    case cli::ParseStatus::kHelp: return 0;
    case cli::ParseStatus::kError: return 2;
  }
  if (!config_path.empty()) {
    try {
      pop = load_population_config(config_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "config error: %s\n", e.what());
      return 1;
    }
  }
  if (chips > 0) pop.chips = chips;
  if (lifetime <= 0.0 || pop.chips < 2) {
    std::fprintf(stderr, "aging_explorer: need --years > 0 and a population of >= 2 chips\n");
    return 2;
  }

  const double checkpoints[] = {lifetime};
  Table table("ARO-PUF flips after " + Table::num(lifetime, 0) +
              " years vs usage intensity (10 ms oscillation per evaluation)");
  table.set_header({"evaluations/day", "duty factor", "mean flips %", "worst chip %"});

  for (const double evals_per_day : {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 8.64e6}) {
    PufConfig cfg = PufConfig::aro();
    cfg.lifetime_profile = StressProfile::aro_gated(evals_per_day, 10e-3);
    cfg.label = "aro-sweep";
    const auto series = run_aging_series(pop, cfg, checkpoints);
    char duty[32];
    std::snprintf(duty, sizeof duty, "%.1e", cfg.lifetime_profile.oscillation_fraction);
    table.add_row({Table::num(evals_per_day, 0), duty,
                   Table::num(series.mean_flip_percent[0], 2),
                   Table::num(series.max_flip_percent[0], 2)});
  }

  // Reference: the conventional always-on design on the same silicon.
  const auto conv = run_aging_series(pop, PufConfig::conventional(), checkpoints);
  table.add_row({"(conventional, always on)", "1.0e+00",
                 Table::num(conv.mean_flip_percent[0], 2),
                 Table::num(conv.max_flip_percent[0], 2)});
  table.print(std::cout);
  return telemetry::finalize_run("aging_explorer", JsonValue(JsonValue::Object{})) ? 0 : 1;
}
