// Aging explorer: a what-if CLI over usage profiles.
//
// How hard can you use an ARO-PUF before gating stops saving you?  Sweep
// evaluations-per-day across six orders of magnitude and watch the 10-year
// flip rate climb from the noise floor back toward the conventional value.
//
//   $ ./aging_explorer [years] [chips]          (defaults: 10 years, 15 chips)
//   $ ./aging_explorer --config pop.json [years]
//
// With --config, the population (technology overrides, chip count, seed)
// comes from a JSON file; see src/sim/experiment_config.hpp for the schema.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment_config.hpp"
#include "sim/scenarios.hpp"
#include "telemetry/manifest.hpp"

int main(int argc, char** argv) {
  using namespace aropuf;
  PopulationConfig pop;
  pop.chips = 15;
  pop.seed = 11;
  double lifetime = 10.0;

  int arg = 1;
  if (argc > 2 && std::strcmp(argv[1], "--config") == 0) {
    try {
      pop = load_population_config(argv[2]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "config error: %s\n", e.what());
      return 1;
    }
    arg = 3;
  } else {
    if (argc > 1) lifetime = std::atof(argv[1]);
    if (argc > 2) pop.chips = std::atoi(argv[2]);
    arg = argc;  // positional args consumed
  }
  if (arg < argc) lifetime = std::atof(argv[arg]);
  if (lifetime <= 0.0 || pop.chips < 2) {
    std::fprintf(stderr, "usage: %s [years > 0] [chips >= 2]\n", argv[0]);
    std::fprintf(stderr, "       %s --config pop.json [years > 0]\n", argv[0]);
    return 1;
  }

  const double checkpoints[] = {lifetime};
  Table table("ARO-PUF flips after " + Table::num(lifetime, 0) +
              " years vs usage intensity (10 ms oscillation per evaluation)");
  table.set_header({"evaluations/day", "duty factor", "mean flips %", "worst chip %"});

  for (const double evals_per_day : {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 8.64e6}) {
    PufConfig cfg = PufConfig::aro();
    cfg.lifetime_profile = StressProfile::aro_gated(evals_per_day, 10e-3);
    cfg.label = "aro-sweep";
    const auto series = run_aging_series(pop, cfg, checkpoints);
    char duty[32];
    std::snprintf(duty, sizeof duty, "%.1e", cfg.lifetime_profile.oscillation_fraction);
    table.add_row({Table::num(evals_per_day, 0), duty,
                   Table::num(series.mean_flip_percent[0], 2),
                   Table::num(series.max_flip_percent[0], 2)});
  }

  // Reference: the conventional always-on design on the same silicon.
  const auto conv = run_aging_series(pop, PufConfig::conventional(), checkpoints);
  table.add_row({"(conventional, always on)", "1.0e+00",
                 Table::num(conv.mean_flip_percent[0], 2),
                 Table::num(conv.max_flip_percent[0], 2)});
  table.print(std::cout);
  return telemetry::finalize_run("aging_explorer", JsonValue(JsonValue::Object{})) ? 0 : 1;
}
