// Authentication demo: a verifier manages a fleet of PUF devices over a
// decade — enrollment, challenge-response verification, impostor rejection,
// and margin-triggered re-enrollment.
//
//   $ ./auth_demo [--devices N] [--years Y] [--far FAR]
#include <cstdio>
#include <vector>

#include "auth/authenticator.hpp"
#include "common/cli.hpp"
#include "puf/ro_puf.hpp"
#include "telemetry/manifest.hpp"

int main(int argc, char** argv) {
  using namespace aropuf;

  int devices = 4;
  int years = 10;
  double far_target = 1e-6;
  cli::Parser parser("auth_demo",
                     "fleet authentication over a decade of aging, with "
                     "margin-triggered re-enrollment");
  parser.opt_int("--devices", &devices, "N", "ARO devices to enroll", 1)
      .opt_double("--far", &far_target, "FAR", "target false-accept rate", 0.0)
      .opt_int("--years", &years, "Y", "deployment lifetime in years", 2)
      .with_env_help();
  switch (parser.parse(argc, argv)) {
    case cli::ParseStatus::kOk: break;
    case cli::ParseStatus::kHelp: return 0;
    case cli::ParseStatus::kError: return 2;
  }

  const TechnologyParams tech = TechnologyParams::cmos90();

  // Verifier policy: threshold set for the target false-accept rate at the
  // ARO response width (128 bits for the default 256-RO array).
  const AuthPolicy policy = AuthPolicy::for_false_accept_rate(128, far_target);
  Authenticator verifier(policy);
  std::printf("verifier policy: accept at <= %.1f%% HD (FAR %.1e)\n",
              policy.accept_threshold * 100.0, policy.false_accept_probability(128));

  // Enroll the fleet.  Devices are 64-bit DeviceId handles since the E15
  // service redesign (the old string names survive one release as a shim).
  const RngFabric fab(77);
  std::vector<RoPuf> fleet;
  for (int d = 0; d < devices; ++d) {
    fleet.emplace_back(tech, PufConfig::aro(), fab.child("device", static_cast<std::uint64_t>(d)));
    const auto id = static_cast<DeviceId>(d);
    verifier.enroll(id, fleet.back().evaluate(fleet.back().nominal_op(), 0));
    std::printf("enrolled device %llu\n", static_cast<unsigned long long>(id));
  }

  // An impostor clone tries to authenticate as device 0.
  const RoPuf impostor(tech, PufConfig::aro(), fab.child("impostor", 0));
  const auto stolen =
      verifier.verify(DeviceId{0}, impostor.evaluate(impostor.nominal_op(), 0));
  std::printf("\nimpostor claiming device 0: HD %.1f%% -> %s\n",
              stolen->fractional_distance * 100.0, stolen->accepted ? "ACCEPTED (!)" : "rejected");

  // Years of field operation with margin-triggered re-enrollment.
  std::printf("\nyear | device-0 HD%% | verdict | action\n");
  for (int year = 2; year <= years; year += 2) {
    for (auto& device : fleet) device.age_years(2.0);
    const BitVector reading =
        fleet[0].evaluate(fleet[0].nominal_op(), static_cast<std::uint64_t>(year));
    const auto result = verifier.verify(DeviceId{0}, reading);
    const char* action = "-";
    if (result->accepted && verifier.needs_refresh(*result, 0.10)) {
      verifier.enroll(DeviceId{0}, reading);
      action = "re-enrolled (thin margin)";
    }
    std::printf("%4d | %10.1f%% | %s | %s\n", year, result->fractional_distance * 100.0,
                result->accepted ? "accept " : "REJECT ", action);
  }
  std::printf("\ngated aging keeps the ARO device inside the threshold for the whole\n"
              "deployment; the same policy locks a conventional chip out in years.\n");
  return telemetry::finalize_run("auth_demo", JsonValue(JsonValue::Object{})) ? 0 : 1;
}
