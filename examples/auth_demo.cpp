// Authentication demo: a verifier manages a fleet of PUF devices over a
// decade — enrollment, challenge-response verification, impostor rejection,
// and margin-triggered re-enrollment.
//
//   $ ./auth_demo
#include <cstdio>

#include "auth/authenticator.hpp"
#include "puf/ro_puf.hpp"
#include "telemetry/manifest.hpp"

int main() {
  using namespace aropuf;
  const TechnologyParams tech = TechnologyParams::cmos90();

  // Verifier policy: threshold set for a 1e-6 false-accept rate at 128 bits.
  const AuthPolicy policy = AuthPolicy::for_false_accept_rate(128, 1e-6);
  Authenticator verifier(policy);
  std::printf("verifier policy: accept at <= %.1f%% HD (FAR %.1e)\n",
              policy.accept_threshold * 100.0, policy.false_accept_probability(128));

  // Enroll a small fleet of ARO devices.
  const RngFabric fab(77);
  std::vector<RoPuf> fleet;
  for (int d = 0; d < 4; ++d) {
    fleet.emplace_back(tech, PufConfig::aro(), fab.child("device", static_cast<std::uint64_t>(d)));
    const std::string id = "device-" + std::to_string(d);
    verifier.enroll(id, fleet.back().evaluate(fleet.back().nominal_op(), 0));
    std::printf("enrolled %s\n", id.c_str());
  }

  // An impostor clone tries to authenticate as device-0.
  const RoPuf impostor(tech, PufConfig::aro(), fab.child("impostor", 0));
  const auto stolen =
      verifier.verify("device-0", impostor.evaluate(impostor.nominal_op(), 0));
  std::printf("\nimpostor claiming device-0: HD %.1f%% -> %s\n",
              stolen->fractional_distance * 100.0, stolen->accepted ? "ACCEPTED (!)" : "rejected");

  // Ten years of field operation with margin-triggered re-enrollment.
  std::printf("\nyear | device-0 HD%% | verdict | action\n");
  for (int year = 2; year <= 10; year += 2) {
    for (auto& device : fleet) device.age_years(2.0);
    const BitVector reading =
        fleet[0].evaluate(fleet[0].nominal_op(), static_cast<std::uint64_t>(year));
    const auto result = verifier.verify("device-0", reading);
    const char* action = "-";
    if (result->accepted && verifier.needs_refresh(*result, 0.10)) {
      verifier.enroll("device-0", reading);
      action = "re-enrolled (thin margin)";
    }
    std::printf("%4d | %10.1f%% | %s | %s\n", year, result->fractional_distance * 100.0,
                result->accepted ? "accept " : "REJECT ", action);
  }
  std::printf("\ngated aging keeps the ARO device inside the threshold for the whole\n"
              "deployment; the same policy locks a conventional chip out in years.\n");
  return telemetry::finalize_run("auth_demo", JsonValue(JsonValue::Object{})) ? 0 : 1;
}
