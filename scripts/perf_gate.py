#!/usr/bin/env python3
"""Performance-regression gate over google-benchmark JSON output.

CI runs bench_micro with --benchmark_format=json and feeds the result here;
the gate compares against the checked-in bench/baseline.json and fails when
any gated benchmark regressed by more than the threshold (default 30 %).

Raw wall-clock times are useless across heterogeneous CI runners, so the
baseline stores *normalized ratios*: each benchmark's time divided by the
time of a CPU-bound normalizer benchmark (BM_Sha256_1KiB) from the same run.
A runner that is 2x slower slows the benchmark AND the normalizer 2x, so the
ratio — and therefore the gate — is machine-speed independent.  Only genuine
relative slowdowns of the simulation kernels trip it.

Hardware-counter gating: bench_micro attaches perf_event user counters (ipc,
cache_miss_rate, ghz, ...) to its JSON when AROPUF_PROF=on and the kernel
grants counters.  baseline.json's "hw_counters" section holds per-benchmark
floors/ceilings (min_ipc, max_cache_miss_rate) checked by `counters` and by
`compare`.  Counters are gated separately from wall time because they fail
differently: an IPC collapse with flat wall time means the machine got
faster while the code got worse, which ratio gating alone cannot see.  When
the counter fields are absent (no PMU, AROPUF_PROF off) the checks skip with
a note instead of failing — CI runners without perf access stay green.

Profiling-overhead gating: baseline.json's "overheads" section pins the
cost of the observability layer itself — `overhead` compares a profiled run
against an unprofiled one (same build, same process kind) and fails when
the profiled wall time exceeds the budget (e.g. 2 % for the resource
sampler).  Min-across-repetitions is used on both sides so scheduler noise
on a loaded runner does not flag the layer.

Usage:
  perf_gate.py compare results.json     # exit 1 on any >threshold regression
  perf_gate.py update results.json      # refresh bench/baseline.json in place
  perf_gate.py self-test results.json   # canary: doctor one result 2x slower
                                        # and assert the gate catches it
  perf_gate.py counters results.json    # hw-counter floors/ceilings only
  perf_gate.py overhead off.json on.json  # profiling overhead budget

Baseline refresh procedure (after an intentional perf change):
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
  AROPUF_THREADS=1 build/bench/bench_micro --benchmark_format=json \
      --benchmark_filter='BM_(KernelFrequencies|AgingSeries200/1|ChipConstruction|ChipEvaluate|Sha256|FoldShard|AuthVerify)' \
      --benchmark_min_time=0.2 > results.json
  python3 scripts/perf_gate.py update results.json
then commit bench/baseline.json with a note on why the numbers moved.

Note `update` only refreshes ratios for benchmarks already in the baseline;
a newly gated benchmark is added by hand-editing bench/baseline.json with a
locally measured ratio.  `compare` FAILS when a baseline-gated benchmark is
missing from the results, so extend the CI --benchmark_filter in the same
change that adds the entry.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "bench" / "baseline.json"
NORMALIZER = "BM_Sha256_1KiB"
DEFAULT_THRESHOLD = 0.30

_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times_ns(results_path: Path) -> dict[str, float]:
    """name -> real_time in ns for every plain (non-aggregate) benchmark."""
    with results_path.open() as fh:
        data = json.load(fh)
    times: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate" or "aggregate_name" in bench:
            continue
        if bench.get("error_occurred"):
            continue  # e.g. the simd row skipping itself on a non-AVX2 CPU
        name = bench["name"]
        if name in times:
            continue  # keep the first occurrence of repeated runs
        times[name] = float(bench["real_time"]) * _UNIT_TO_NS[bench.get("time_unit", "ns")]
    return times


def load_min_times_ns(results_path: Path) -> dict[str, float]:
    """name -> minimum real_time in ns across repetitions.

    The overhead gate compares two absolute wall times from the same machine,
    so (unlike the first-occurrence policy above, which mirrors how the
    normalized-ratio baseline was recorded) the min across repetitions is the
    right estimator: scheduler noise only ever adds time.
    """
    with results_path.open() as fh:
        data = json.load(fh)
    times: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate" or "aggregate_name" in bench:
            continue
        if bench.get("error_occurred"):
            continue
        t = float(bench["real_time"]) * _UNIT_TO_NS[bench.get("time_unit", "ns")]
        name = bench["name"]
        times[name] = min(times[name], t) if name in times else t
    return times


# User counters bench_micro attaches via state.counters when hardware
# counters are live.  Their presence in the JSON is how the gate knows the
# run was counter-profiled at all.
COUNTER_FIELDS = ("ipc", "ghz", "cycles", "instructions", "cache_miss_rate",
                  "branch_misses")


def load_counters(results_path: Path) -> dict[str, dict[str, float]]:
    """name -> {counter: value} for benchmarks that carry hw counters."""
    with results_path.open() as fh:
        data = json.load(fh)
    counters: dict[str, dict[str, float]] = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate" or "aggregate_name" in bench:
            continue
        if bench.get("error_occurred"):
            continue
        row = {f: float(bench[f]) for f in COUNTER_FIELDS
               if isinstance(bench.get(f), (int, float))}
        if row and bench["name"] not in counters:
            counters[bench["name"]] = row
    return counters


def normalized_ratios(times: dict[str, float]) -> dict[str, float]:
    if NORMALIZER not in times:
        sys.exit(f"error: normalizer benchmark {NORMALIZER!r} missing from results "
                 "(it must run in the same bench_micro invocation)")
    norm = times[NORMALIZER]
    return {name: t / norm for name, t in times.items() if name != NORMALIZER}


def load_baseline(baseline_path: Path) -> dict:
    with baseline_path.open() as fh:
        return json.load(fh)


def compare(ratios: dict[str, float], baseline: dict, *, quiet: bool = False) -> list[str]:
    """Returns the list of regression messages (empty == gate passes)."""
    threshold = float(baseline.get("threshold", DEFAULT_THRESHOLD))
    failures: list[str] = []
    for name, base_ratio in sorted(baseline["benchmarks"].items()):
        if name not in ratios:
            failures.append(f"{name}: missing from results (gated benchmark not run)")
            continue
        ratio = ratios[name]
        change = ratio / base_ratio - 1.0
        status = "OK"
        if change > threshold:
            status = "REGRESSION"
            failures.append(
                f"{name}: normalized ratio {ratio:.4g} vs baseline {base_ratio:.4g} "
                f"({change:+.1%} > +{threshold:.0%} threshold)")
        elif change < -threshold:
            status = "faster (consider refreshing the baseline)"
        if not quiet:
            print(f"  {name}: {ratio:.4g} (baseline {base_ratio:.4g}, {change:+.1%}) {status}")
    failures += compare_speedups(ratios, baseline, quiet=quiet)
    return failures


def compare_speedups(ratios: dict[str, float], baseline: dict, *,
                     quiet: bool = False) -> list[str]:
    """Minimum-speedup floors: pairs where `fast` must beat `slow` by >= min.

    Unlike the per-benchmark regression ratios, a speedup is a property of
    one run (both sides measured on the same machine in the same process),
    so the floor holds absolutely — no normalization or drift margin needed.
    Used to gate the binary shard transport's >= 5x fold advantage over JSON.
    """
    failures: list[str] = []
    for label, spec in sorted(baseline.get("speedups", {}).items()):
        fast, slow, floor = spec["fast"], spec["slow"], float(spec["min"])
        missing = [n for n in (fast, slow) if n not in ratios]
        if missing:
            failures.append(f"speedup {label}: benchmark(s) {missing} missing from results")
            continue
        speedup = ratios[slow] / ratios[fast]
        status = "OK"
        if speedup < floor:
            status = "BELOW FLOOR"
            failures.append(
                f"speedup {label}: {slow} / {fast} = {speedup:.2f}x, "
                f"required >= {floor:.2f}x")
        if not quiet:
            print(f"  speedup {label}: {speedup:.2f}x (floor {floor:.2f}x) {status}")
    return failures


def compare_counters(counters: dict[str, dict[str, float]], baseline: dict, *,
                     quiet: bool = False) -> tuple[list[str], list[str]]:
    """Hardware-counter floors/ceilings; returns (failures, skip notes).

    A missing counter column is a *skip*, not a failure: perf_event access
    is a runner property (paranoid level, container PMU passthrough), and a
    gate that fails wherever counters are unavailable would just get
    disabled.  The skip note keeps the absence visible in the CI log.
    """
    failures: list[str] = []
    notes: list[str] = []
    for name, spec in sorted(baseline.get("hw_counters", {}).items()):
        row = counters.get(name)
        if row is None:
            notes.append(f"hw_counters {name}: no counter columns in results "
                         "(no PMU or AROPUF_PROF off) — skipped")
            continue
        checks = []
        if "min_ipc" in spec:
            checks.append(("ipc", float(spec["min_ipc"]), ">="))
        if "max_cache_miss_rate" in spec:
            checks.append(("cache_miss_rate", float(spec["max_cache_miss_rate"]), "<="))
        for field, bound, op in checks:
            if field not in row:
                notes.append(f"hw_counters {name}: field '{field}' absent — skipped")
                continue
            value = row[field]
            bad = value < bound if op == ">=" else value > bound
            status = "VIOLATION" if bad else "OK"
            if bad:
                failures.append(f"hw_counters {name}: {field} = {value:.4g}, "
                                f"required {op} {bound:.4g}")
            if not quiet:
                print(f"  hw {name}: {field} = {value:.4g} "
                      f"(bound {op} {bound:.4g}) {status}")
    return failures, notes


def cmd_compare(args: argparse.Namespace) -> int:
    ratios = normalized_ratios(load_times_ns(args.results))
    baseline = load_baseline(args.baseline)
    print(f"perf gate: {args.results} vs {args.baseline} "
          f"(threshold +{float(baseline.get('threshold', DEFAULT_THRESHOLD)):.0%}, "
          f"normalizer {NORMALIZER})")
    failures = compare(ratios, baseline)
    counter_failures, notes = compare_counters(load_counters(args.results), baseline)
    failures += counter_failures
    for note in notes:
        print(f"  note: {note}")
    if failures:
        print("\nperf gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        print("\nIf the slowdown is intentional, refresh the baseline "
              "(see scripts/perf_gate.py docstring) and commit bench/baseline.json.")
        return 1
    print("perf gate passed")
    return 0


def cmd_update(args: argparse.Namespace) -> int:
    ratios = normalized_ratios(load_times_ns(args.results))
    speedups: dict = {}
    overheads: dict = {}
    hw_counters: dict = {}
    try:
        old = load_baseline(args.baseline)
        threshold = float(old.get("threshold", DEFAULT_THRESHOLD))
        speedups = old.get("speedups", {})
        overheads = old.get("overheads", {})
        hw_counters = old.get("hw_counters", {})
        gated = [name for name in old["benchmarks"] if name in ratios]
        missing = sorted(set(old["benchmarks"]) - set(ratios))
        if missing:
            sys.exit("error: results are missing gated benchmarks "
                     f"{missing}; run bench_micro with a filter covering all of them")
    except FileNotFoundError:
        threshold = DEFAULT_THRESHOLD
        gated = sorted(ratios)
    baseline = {
        "normalizer": NORMALIZER,
        "threshold": threshold,
        "benchmarks": {name: round(ratios[name], 6) for name in sorted(gated)},
    }
    if speedups:
        baseline["speedups"] = speedups
    if overheads:
        baseline["overheads"] = overheads
    if hw_counters:
        baseline["hw_counters"] = hw_counters
    with args.baseline.open("w") as fh:
        json.dump(baseline, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.baseline} ({len(gated)} gated benchmarks)")
    return 0


def cmd_counters(args: argparse.Namespace) -> int:
    baseline = load_baseline(args.baseline)
    if not baseline.get("hw_counters"):
        print("no hw_counters section in baseline — nothing to gate")
        return 0
    counters = load_counters(args.results)
    print(f"hw-counter gate: {args.results} vs {args.baseline}")
    failures, notes = compare_counters(counters, baseline)
    for note in notes:
        print(f"  note: {note}")
    if failures:
        print("\nhw-counter gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("hw-counter gate passed")
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    baseline = load_baseline(args.baseline)
    overheads = baseline.get("overheads", {})
    if not overheads:
        print("no overheads section in baseline — nothing to gate")
        return 0
    off_times = load_min_times_ns(args.results)
    on_times = load_min_times_ns(args.profiled)
    print(f"overhead gate: {args.profiled} (profiled) vs {args.results} (plain)")
    failures: list[str] = []
    for label, spec in sorted(overheads.items()):
        name = spec["benchmark"]
        budget = float(spec["max_overhead"])
        missing = [p for p, times in ((args.results, off_times), (args.profiled, on_times))
                   if name not in times]
        if missing:
            failures.append(f"overhead {label}: benchmark {name!r} missing from "
                            f"{', '.join(map(str, missing))}")
            continue
        overhead = on_times[name] / off_times[name] - 1.0
        status = "OK"
        if overhead > budget:
            status = "OVER BUDGET"
            failures.append(f"overhead {label}: {name} profiled run is "
                            f"{overhead:+.2%}, budget +{budget:.0%}")
        print(f"  {label}: {name} {overhead:+.2%} (budget +{budget:.0%}) {status}")
    if failures:
        print("\noverhead gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        print("\nThe profiling layer itself got more expensive — check the "
              "sampler cadence and per-scope counter reads before raising the budget.")
        return 1
    print("overhead gate passed")
    return 0


def cmd_self_test(args: argparse.Namespace) -> int:
    """Canary: a synthetic 2x slowdown of one gated benchmark MUST fail."""
    ratios = normalized_ratios(load_times_ns(args.results))
    baseline = load_baseline(args.baseline)
    gated = [name for name in baseline["benchmarks"] if name in ratios]
    if not gated:
        sys.exit("error: no gated benchmark present in results")
    clean = compare(ratios, baseline, quiet=True)
    if clean:
        sys.exit("error: self-test needs a passing run to doctor, but the gate "
                 f"already fails: {clean}")
    victim = gated[0]
    doctored = dict(ratios)
    doctored[victim] *= 2.0
    failures = compare(doctored, baseline, quiet=True)
    if not failures:
        sys.exit(f"error: gate did NOT flag a synthetic 2x slowdown of {victim} — "
                 "the regression check is broken")
    print(f"self-test passed: synthetic 2x slowdown of {victim} was flagged "
          f"({len(failures)} failure(s)) and the undoctored run passes")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)
    for name, fn in (("compare", cmd_compare), ("update", cmd_update),
                     ("self-test", cmd_self_test), ("counters", cmd_counters),
                     ("overhead", cmd_overhead)):
        p = sub.add_parser(name)
        p.add_argument("results", type=Path, help="google-benchmark JSON output")
        if name == "overhead":
            p.add_argument("profiled", type=Path,
                           help="JSON from the same benchmark with AROPUF_PROF=on")
        p.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
        p.set_defaults(fn=fn)
    args = parser.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
