#!/bin/sh
# Fleet end-to-end smoke: one coordinator + two localhost workers, with the
# merged statistics required to be bit-identical to a single-process run
# (--check-single).  With --kill-one, the first worker hard-closes its
# connection on its first job (the --abort-first-job test hook), which drives
# the coordinator's reassignment path deterministically — the run must still
# complete bit-identically.
#
# Usage: fleet_smoke.sh FLEET_BINARY OUT_DIR [--kill-one]
#
# Exit: 0 on success; nonzero (with a message) on any failure.  Used by the
# tools.fleet_* ctest legs and the CI fleet-smoke job.
set -eu

FLEET=${1:?usage: fleet_smoke.sh FLEET_BINARY OUT_DIR [--kill-one]}
OUT=${2:?usage: fleet_smoke.sh FLEET_BINARY OUT_DIR [--kill-one]}
KILL_ONE=${3:-}

rm -rf "$OUT"
mkdir -p "$OUT"
PORT_FILE="$OUT/coordinator.port"

# Total timeout bounds a hung run (a dead worker must surface as a reassign
# or a failed job, never as a stuck CI leg).
"$FLEET" --listen 0 --port-file "$PORT_FILE" \
  --shards 3 --chips 12 --checkpoints 1,10 \
  --out "$OUT" --check-single --timeout 600 --run shard_study &
COORD_PID=$!

# Rendezvous: the coordinator writes the kernel-assigned port atomically.
i=0
while [ ! -f "$PORT_FILE" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "fleet_smoke: coordinator never wrote $PORT_FILE" >&2
    kill "$COORD_PID" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done
PORT=$(cat "$PORT_FILE")

W1_FLAGS=""
if [ "$KILL_ONE" = "--kill-one" ]; then
  W1_FLAGS="--abort-first-job"
fi
# shellcheck disable=SC2086  # W1_FLAGS is intentionally word-split
"$FLEET" --worker "127.0.0.1:$PORT" --name smoke-w1 $W1_FLAGS &
W1_PID=$!
"$FLEET" --worker "127.0.0.1:$PORT" --name smoke-w2 &
W2_PID=$!

COORD_RC=0
wait "$COORD_PID" || COORD_RC=$?
W1_RC=0
wait "$W1_PID" || W1_RC=$?
W2_RC=0
wait "$W2_PID" || W2_RC=$?

if [ "$COORD_RC" -ne 0 ]; then
  echo "fleet_smoke: coordinator exited $COORD_RC (want 0)" >&2
  exit 1
fi
if [ "$KILL_ONE" = "--kill-one" ]; then
  # WorkerExit::kAborted — the hook must actually have fired.
  if [ "$W1_RC" -ne 3 ]; then
    echo "fleet_smoke: killed worker exited $W1_RC (want 3)" >&2
    exit 1
  fi
else
  if [ "$W1_RC" -ne 0 ]; then
    echo "fleet_smoke: worker 1 exited $W1_RC (want 0)" >&2
    exit 1
  fi
fi
if [ "$W2_RC" -ne 0 ]; then
  echo "fleet_smoke: worker 2 exited $W2_RC (want 0)" >&2
  exit 1
fi
if [ ! -f "$OUT/merged.manifest.json" ]; then
  echo "fleet_smoke: no merged manifest in $OUT" >&2
  exit 1
fi
echo "fleet_smoke: OK ($OUT)"
