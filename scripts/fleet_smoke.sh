#!/bin/sh
# Fleet end-to-end smoke: one coordinator + two localhost workers, with the
# merged statistics required to be bit-identical to a single-process run
# (--check-single).  With --kill-one, the first worker hard-closes its
# connection on its first job (the --abort-first-job test hook), which drives
# the coordinator's reassignment path deterministically — the run must still
# complete bit-identically.
#
# Usage: fleet_smoke.sh FLEET_BINARY OUT_DIR [--kill-one]
#
# Exit: 0 on success; nonzero (with a message) on any failure.  Used by the
# tools.fleet_* ctest legs and the CI fleet-smoke job.
set -eu

FLEET=${1:?usage: fleet_smoke.sh FLEET_BINARY OUT_DIR [--kill-one]}
OUT=${2:?usage: fleet_smoke.sh FLEET_BINARY OUT_DIR [--kill-one]}
KILL_ONE=${3:-}

rm -rf "$OUT"
mkdir -p "$OUT"
PORT_FILE="$OUT/coordinator.port"

# Profile the whole fleet: every process resolves AROPUF_PROF itself (perf
# counters where the kernel allows, the rusage fallback elsewhere), so the
# workers' METRICS frames carry prof.*/proc.* instruments either way and the
# Prometheus exposition must export them.
AROPUF_PROF=on
export AROPUF_PROF

# Total timeout bounds a hung run (a dead worker must surface as a reassign
# or a failed job, never as a stuck CI leg).
"$FLEET" --listen 0 --port-file "$PORT_FILE" \
  --shards 3 --chips 12 --checkpoints 1,10 \
  --out "$OUT" --check-single --timeout 600 --run shard_study &
COORD_PID=$!

# Rendezvous: the coordinator writes the kernel-assigned port atomically.
i=0
while [ ! -f "$PORT_FILE" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "fleet_smoke: coordinator never wrote $PORT_FILE" >&2
    kill "$COORD_PID" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done
PORT=$(cat "$PORT_FILE")

W1_FLAGS=""
if [ "$KILL_ONE" = "--kill-one" ]; then
  W1_FLAGS="--abort-first-job"
fi
# shellcheck disable=SC2086  # W1_FLAGS is intentionally word-split
"$FLEET" --worker "127.0.0.1:$PORT" --name smoke-w1 $W1_FLAGS &
W1_PID=$!
"$FLEET" --worker "127.0.0.1:$PORT" --name smoke-w2 &
W2_PID=$!

COORD_RC=0
wait "$COORD_PID" || COORD_RC=$?
W1_RC=0
wait "$W1_PID" || W1_RC=$?
W2_RC=0
wait "$W2_PID" || W2_RC=$?

if [ "$COORD_RC" -ne 0 ]; then
  echo "fleet_smoke: coordinator exited $COORD_RC (want 0)" >&2
  exit 1
fi
if [ "$KILL_ONE" = "--kill-one" ]; then
  # WorkerExit::kAborted — the hook must actually have fired.
  if [ "$W1_RC" -ne 3 ]; then
    echo "fleet_smoke: killed worker exited $W1_RC (want 3)" >&2
    exit 1
  fi
else
  if [ "$W1_RC" -ne 0 ]; then
    echo "fleet_smoke: worker 1 exited $W1_RC (want 0)" >&2
    exit 1
  fi
fi
if [ "$W2_RC" -ne 0 ]; then
  echo "fleet_smoke: worker 2 exited $W2_RC (want 0)" >&2
  exit 1
fi
if [ ! -f "$OUT/merged.manifest.json" ]; then
  echo "fleet_smoke: no merged manifest in $OUT" >&2
  exit 1
fi

# Observability artifacts: every run must leave the merged fleet timeline,
# the metrics snapshot, and the Prometheus exposition next to the manifest.
for artifact in fleet_trace.json fleet_metrics.json fleet_metrics.prom; do
  if [ ! -f "$OUT/$artifact" ]; then
    echo "fleet_smoke: missing observability artifact $OUT/$artifact" >&2
    exit 1
  fi
done

# With AROPUF_PROF=on every worker's snapshots carry profiling instruments
# (prof.scopes at minimum, even on the fallback path), so the exposition
# must include the per-worker profile family.
if ! grep -q "aropuf_fleet_worker_profile" "$OUT/fleet_metrics.prom"; then
  echo "fleet_smoke: fleet_metrics.prom has no aropuf_fleet_worker_profile series" >&2
  exit 1
fi

# Deep checks need python3; skip gracefully on hosts without it (the C++
# gtest suites cover the same invariants in-process).
if command -v python3 >/dev/null 2>&1; then
  SCRIPT_DIR=$(dirname "$0")
  python3 "$SCRIPT_DIR/validate_manifest.py" --trace "$OUT/fleet_trace.json"
  python3 "$SCRIPT_DIR/validate_manifest.py" --fleet-metrics "$OUT/fleet_metrics.json"
  # One trace_id, spans from the coordinator AND both worker processes, and
  # per-worker job counts summing to the shard plan (reassignment included).
  python3 - "$OUT" "$KILL_ONE" <<'PYEOF'
import json, sys
out, kill_one = sys.argv[1], sys.argv[2]
trace = json.load(open(f"{out}/fleet_trace.json"))
metrics = json.load(open(f"{out}/fleet_metrics.json"))
if not trace.get("trace_id"):
    sys.exit(f"{out}/fleet_trace.json: missing trace_id")
if trace["trace_id"] != metrics.get("trace_id"):
    sys.exit("trace_id differs between fleet_trace.json and fleet_metrics.json")
x_pids = {e["pid"] for e in trace["traceEvents"] if e.get("ph") == "X"}
if 1 not in x_pids:
    sys.exit("merged trace has no coordinator (pid 1) spans")
worker_pids = {w["pid"] for w in metrics["workers"]}
missing = worker_pids - x_pids
if missing:
    sys.exit(f"merged trace is missing spans from worker pid(s) {sorted(missing)}"
             " — even a killed worker ships its connect span")
prev = -1.0
for e in trace["traceEvents"]:
    if e.get("ph") != "X":
        continue
    if e["ts"] < prev:
        sys.exit("merged trace timestamps are not monotonic after offset correction")
    prev = e["ts"]
shards = metrics["shards"]
done_sum = sum(w["jobs_done"] for w in metrics["workers"])
if done_sum != shards["done"] or shards["done"] != shards["total"]:
    sys.exit(f"job accounting broken: per-worker sum {done_sum}, "
             f"done {shards['done']}, total {shards['total']}")
if kill_one == "--kill-one":
    if shards["reassigned"] < 1:
        sys.exit("kill-one run recorded no reassignment")
    if len(metrics["workers"]) != 2:
        sys.exit("kill-one run should have seen exactly 2 workers")
print(f"fleet_smoke: observability OK (trace_id {trace['trace_id']}, "
      f"{len(x_pids)} processes, {shards['reassigned']} reassigned)")
PYEOF
fi
echo "fleet_smoke: OK ($OUT)"
