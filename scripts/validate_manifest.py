#!/usr/bin/env python3
"""Schema validator for aropuf run manifests and Chrome-trace files.

Run manifests (telemetry/manifest.hpp, DESIGN.md §8.4) are the
machine-readable provenance record every bench/example can emit
(AROPUF_MANIFEST=path, or ARO_CSV_DIR fallback).  CI runs a scenario with
manifests and tracing enabled and validates both artifacts here, so a
serialization regression fails the build instead of silently producing
files Perfetto or the shard-merge driver cannot read.

Aggregated manifests (telemetry/aggregate.hpp, written by tools/aropuf_shard)
and progress heartbeat JSONL files (telemetry/progress.hpp) validate here
too, and --diff-stats enforces the sharding acceptance bar: the sections
that must be invariant under shard decomposition (config, results, study)
must match byte-for-byte between two aggregate manifests.

Binary shard manifests (telemetry/binfmt.hpp, the ARPB container that moves
sample values out of the JSON document) validate with --binary: the framing
is struct-decoded and cross-checked against the embedded metadata, and the
metadata document itself must pass the run-manifest schema.

--diff-stats refuses to compare a kept-raw aggregate against a dropped-raw
one: their statistics can match while their payloads differ by design, so a
silent pass would hide a policy regression.  Pass --ignore-raw-policy for
the deliberate cross-policy comparisons (e.g. CI checking that a streaming
drop-raw run reproduces a kept single-shot run's statistics).

Resource timelines (telemetry/prof.hpp ResourceSampler) validate with
--resource: every JSONL line must carry a monotonic timestamp and
non-negative RSS/CPU readings, with the same torn-final-line tolerance as
the heartbeat reader.  The run-manifest "profile" section (counter mode,
fallback reason, peak RSS) is validated as part of the manifest schema.

Usage:
  validate_manifest.py manifest.json [more.json ...]   # manifest schema
  validate_manifest.py --trace trace.json [...]        # Chrome-trace format
  validate_manifest.py --aggregate merged.json [...]   # aggregate schema
  validate_manifest.py --binary shard.manifest.bin [...]  # ARPB container
  validate_manifest.py --auth-store store.arps [...]   # ARPS enrollment store
  validate_manifest.py --progress progress.jsonl [...] # heartbeat JSONL
  validate_manifest.py --resource resource.jsonl [...] # resource timeline
  validate_manifest.py --fleet-metrics fleet_metrics.json [...]
                                                       # fleet snapshot schema
  validate_manifest.py --diff-stats [--ignore-raw-policy] a.json b.json
                                                       # bit-identity check

Exit code 0 when every file validates, 1 otherwise (one line per problem).
"""

from __future__ import annotations

import json
import struct
import sys
from pathlib import Path

SCHEMA = "aropuf-run-manifest"
SCHEMA_VERSION = 1
AGGREGATE_SCHEMA = "aropuf-aggregate-manifest"
# v1: no raw_series marker, no embedded values.  v2 (AggregateBuilder): adds
# the top-level "raw_series" marker and, when it says "kept", the concatenated
# per-chip values inside every merged sample series.
AGGREGATE_SCHEMA_VERSIONS = (1, 2)

# Key -> predicate over the parsed JSON value.  Every key is required:
# build_manifest() fills defaults for facts no subsystem reported, so an
# absent key always means a serialization bug, not a quiet run.
MANIFEST_KEYS = {
    "schema": lambda v: v == SCHEMA,
    "schema_version": lambda v: v == SCHEMA_VERSION,
    "run": lambda v: isinstance(v, str) and v != "",
    "created_unix_ms": lambda v: isinstance(v, (int, float)) and v > 0,
    "git_sha": lambda v: isinstance(v, str) and v != "",
    "build": lambda v: isinstance(v, dict) and isinstance(v.get("type"), str)
    and isinstance(v.get("simd_compiled"), bool),
    "config": lambda v: isinstance(v, dict),
    "threads": lambda v: isinstance(v, (int, float)) and v >= 0,
    "kernel_backend": lambda v: v in ("reference", "batched", "simd", "unknown"),
    "stages": lambda v: isinstance(v, list),
    "metrics": lambda v: isinstance(v, dict) and isinstance(v.get("counters"), dict)
    and isinstance(v.get("gauges"), dict) and isinstance(v.get("histograms"), dict),
    "profile": lambda v: isinstance(v, dict),
}

# Modes a run manifest's profile section may report (telemetry/prof.hpp
# ProfMode); aggregates additionally use "mixed" when shards disagree.
PROFILE_MODES = ("counters", "fallback", "off")
AGGREGATE_PROFILE_MODES = PROFILE_MODES + ("mixed",)

STAGE_KEYS = {
    "name": lambda v: isinstance(v, str) and v != "",
    "wall_ms": lambda v: isinstance(v, (int, float)) and v >= 0,
    "cpu_ms": lambda v: isinstance(v, (int, float)) and v >= 0,
}

# Required on every trace event, metadata ("M") records included — the
# serializer deliberately stamps ts/tid on those too so this stays simple.
TRACE_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


def fail(path: Path, message: str) -> str:
    return f"{path}: {message}"


def validate_profile_section(profile, path: Path, *, aggregate: bool) -> list[str]:
    """Validates a manifest's "profile" section (telemetry/prof.hpp).

    Run manifests carry a single mode + fallback_reason; aggregates carry
    the merged mode ("mixed" when shards disagree), the deduplicated
    fallback_reasons list, and a per_shard echo of every input section.
    The counters object is optional in both (absent when perf_event was
    unavailable), but when present every entry must be a non-negative
    number — downstream gates read these fields arithmetically.
    """
    if not isinstance(profile, dict):
        return [fail(path, "profile section is not an object")]
    problems = []
    modes = AGGREGATE_PROFILE_MODES if aggregate else PROFILE_MODES
    if profile.get("mode") not in modes:
        problems.append(fail(path, f"profile mode {profile.get('mode')!r} "
                                   f"not one of {modes}"))
    rss = profile.get("peak_rss_kib")
    if not isinstance(rss, (int, float)) or rss < 0:
        problems.append(fail(path, "profile peak_rss_kib missing or negative"))
    if aggregate:
        reasons = profile.get("fallback_reasons")
        if not isinstance(reasons, list) or not all(
                isinstance(r, str) for r in reasons):
            problems.append(fail(path, "profile fallback_reasons must be a "
                                       "list of strings"))
        if not isinstance(profile.get("per_shard"), dict):
            problems.append(fail(path, "profile per_shard missing"))
    else:
        if not isinstance(profile.get("fallback_reason"), str):
            problems.append(fail(path, "profile fallback_reason must be a string"))
        # A manifest claiming hardware counters ran but giving no reason for
        # a fallback (or vice versa) is internally inconsistent.
        if profile.get("mode") == "fallback" and not profile.get("fallback_reason"):
            problems.append(fail(path, "profile mode is 'fallback' but "
                                       "fallback_reason is empty"))
    counters = profile.get("counters")
    if counters is not None:
        if not isinstance(counters, dict):
            problems.append(fail(path, "profile counters is not an object"))
        else:
            for name, value in counters.items():
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(fail(
                        path, f"profile counter '{name}' is not a "
                              "non-negative number"))
    sampler = profile.get("sampler")
    if sampler is not None and not aggregate:
        if not isinstance(sampler, dict):
            problems.append(fail(path, "profile sampler is not an object"))
        else:
            if not isinstance(sampler.get("interval_ms"), (int, float)) or \
                    sampler["interval_ms"] <= 0:
                problems.append(fail(path, "profile sampler interval_ms invalid"))
            if not isinstance(sampler.get("samples"), (int, float)) or \
                    sampler["samples"] < 0:
                problems.append(fail(path, "profile sampler samples invalid"))
            if sampler.get("ok") is not True:
                problems.append(fail(path, "profile sampler reports a stream "
                                          "failure (ok != true)"))
    return problems


def validate_manifest(path: Path) -> list[str]:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [fail(path, f"unreadable or invalid JSON: {e}")]
    return validate_manifest_doc(doc, path)


def validate_manifest_doc(doc, path: Path) -> list[str]:
    if not isinstance(doc, dict):
        return [fail(path, "top level must be a JSON object")]
    problems = []
    for key, ok in MANIFEST_KEYS.items():
        if key not in doc:
            problems.append(fail(path, f"missing required key '{key}'"))
        elif not ok(doc[key]):
            problems.append(fail(path, f"key '{key}' has invalid value {doc[key]!r}"))
    for i, stage in enumerate(doc.get("stages", [])):
        if not isinstance(stage, dict):
            problems.append(fail(path, f"stages[{i}] is not an object"))
            continue
        for key, ok in STAGE_KEYS.items():
            if key not in stage or not ok(stage[key]):
                problems.append(fail(path, f"stages[{i}] key '{key}' missing or invalid"))
        # Hardware-counter deltas are optional per stage (absent when
        # perf_event was unavailable), but must be numeric when present.
        if "counters" in stage:
            if not isinstance(stage["counters"], dict):
                problems.append(fail(path, f"stages[{i}] counters is not an object"))
            else:
                for name, value in stage["counters"].items():
                    if not isinstance(value, (int, float)):
                        problems.append(fail(
                            path, f"stages[{i}] counter '{name}' is not a number"))
    for name, value in doc.get("metrics", {}).get("counters", {}).items():
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(fail(path, f"counter '{name}' is not a non-negative number"))
    if "profile" in doc:
        problems.extend(validate_profile_section(doc["profile"], path, aggregate=False))
    return problems


# Aggregate manifest root keys (telemetry/aggregate.cpp aggregate_shards()).
AGGREGATE_KEYS = {
    "schema": lambda v: v == AGGREGATE_SCHEMA,
    "schema_version": lambda v: v in AGGREGATE_SCHEMA_VERSIONS,
    "run": lambda v: isinstance(v, str) and v != "",
    "created_unix_ms": lambda v: isinstance(v, (int, float)) and v > 0,
    "chips": lambda v: isinstance(v, (int, float)) and v >= 2,
    "shard_count": lambda v: isinstance(v, (int, float)) and v >= 1,
    "config": lambda v: isinstance(v, dict),
    "git_sha": lambda v: isinstance(v, str) and v != "",
    "build": lambda v: isinstance(v, dict),
    "shards": lambda v: isinstance(v, list) and v,
    "stages": lambda v: isinstance(v, list),
    "metrics": lambda v: isinstance(v, dict) and isinstance(v.get("counters"), dict)
    and isinstance(v.get("gauges"), dict) and isinstance(v.get("histograms"), dict),
    "results": lambda v: isinstance(v, dict) and isinstance(v.get("samples"), dict)
    and isinstance(v.get("tallies"), dict),
    "conflicts": lambda v: isinstance(v, list),
    "profile": lambda v: isinstance(v, dict),
}

SHARD_ROW_KEYS = ("index", "chip_lo", "chip_hi", "manifest", "git_sha", "threads",
                  "kernel_backend", "wall_ms")

HEARTBEAT_KEYS = {
    "ts_unix_ms": lambda v: isinstance(v, (int, float)) and v > 0,
    "shard": lambda v: isinstance(v, (int, float)) and v >= 0,
    "stage": lambda v: isinstance(v, str) and v != "",
    "done": lambda v: isinstance(v, (int, float)) and v >= 0,
    "total": lambda v: isinstance(v, (int, float)) and v >= 0,
    "elapsed_ms": lambda v: isinstance(v, (int, float)) and v >= 0,
}

# Sections of an aggregate manifest that must be byte-identical for any shard
# decomposition of the same study (the PR's bit-identity acceptance bar).
# Shard-count-dependent sections (shards, stages, metrics, timing) are
# deliberately excluded.
INVARIANT_SECTIONS = ("config", "results", "study")


def validate_aggregate(path: Path) -> list[str]:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [fail(path, f"unreadable or invalid JSON: {e}")]
    if not isinstance(doc, dict):
        return [fail(path, "top level must be a JSON object")]
    problems = []
    for key, ok in AGGREGATE_KEYS.items():
        if key not in doc:
            problems.append(fail(path, f"missing required key '{key}'"))
        elif not ok(doc[key]):
            problems.append(fail(path, f"key '{key}' has invalid value"))
    if isinstance(doc.get("profile"), dict):
        problems.extend(validate_profile_section(doc["profile"], path, aggregate=True))

    # Shard rows must carry their coordinates and exactly tile [0, chips).
    ranges = []
    for i, row in enumerate(doc.get("shards", [])):
        if not isinstance(row, dict):
            problems.append(fail(path, f"shards[{i}] is not an object"))
            continue
        for key in SHARD_ROW_KEYS:
            if key not in row:
                problems.append(fail(path, f"shards[{i}] missing '{key}'"))
        if isinstance(row.get("chip_lo"), (int, float)) and isinstance(
                row.get("chip_hi"), (int, float)):
            ranges.append((row["chip_lo"], row["chip_hi"]))
    if ranges and isinstance(doc.get("chips"), (int, float)):
        cursor = 0
        for lo, hi in sorted(ranges):
            if lo != cursor:
                problems.append(fail(path, f"shard chip ranges leave a gap at {cursor}"))
                break
            cursor = hi
        else:
            if cursor != doc["chips"]:
                problems.append(
                    fail(path, f"shard ranges cover [0, {cursor}) but chips = {doc['chips']}"))
    if isinstance(doc.get("shards"), list) and isinstance(doc.get("shard_count"), (int, float)):
        if len(doc["shards"]) != doc["shard_count"]:
            problems.append(fail(path, "shards[] length disagrees with shard_count"))

    # Gauges carry their merge policy and every shard's reading; the resolved
    # value must be one of the per-shard readings (never an average).
    for name, gauge in doc.get("metrics", {}).get("gauges", {}).items():
        if not isinstance(gauge, dict):
            problems.append(fail(path, f"gauge '{name}' is not an object"))
            continue
        if gauge.get("policy") not in ("max", "last"):
            problems.append(fail(path, f"gauge '{name}' has unknown policy"))
        per_shard = gauge.get("per_shard")
        if not isinstance(per_shard, dict) or not per_shard:
            problems.append(fail(path, f"gauge '{name}' missing per_shard readings"))
        elif gauge.get("value") not in per_shard.values():
            problems.append(fail(path, f"gauge '{name}' value is not any shard's reading"))

    # v2 carries the raw-series disposition marker, and the marker must agree
    # with what the sample series actually contain: "kept" means every series
    # embeds its concatenated values (one per counted sample), "dropped" means
    # none do.  A manifest that says one thing and does the other is lying
    # about its own memory footprint.
    raw_series = doc.get("raw_series")
    if doc.get("schema_version") == 2:
        if raw_series not in ("kept", "dropped"):
            problems.append(fail(path, f"raw_series must be 'kept' or 'dropped', got {raw_series!r}"))
    elif "raw_series" in doc:
        problems.append(fail(path, "schema_version 1 must not carry a raw_series marker"))
    if raw_series in ("kept", "dropped"):
        for name, series in doc.get("results", {}).get("samples", {}).items():
            if not isinstance(series, dict):
                continue
            values = series.get("values")
            if raw_series == "kept":
                if not isinstance(values, list):
                    problems.append(
                        fail(path, f"samples '{name}': raw_series is 'kept' but no values array"))
                elif isinstance(series.get("count"), (int, float)) and len(values) != series["count"]:
                    problems.append(
                        fail(path, f"samples '{name}' embeds {len(values)} values, "
                                   f"count is {series['count']}"))
            elif "values" in series:
                problems.append(
                    fail(path, f"samples '{name}': raw_series is 'dropped' but values present"))

    # Results: series offsets were already tiled by the C++ merger, but the
    # summary stats must at least be self-consistent.
    for kind in ("samples", "tallies"):
        for name, series in doc.get("results", {}).get(kind, {}).items():
            if not isinstance(series, dict):
                problems.append(fail(path, f"{kind} '{name}' is not an object"))
                continue
            for key in ("count", "mean", "stddev", "min", "max", "histogram"):
                if key not in series:
                    problems.append(fail(path, f"{kind} '{name}' missing '{key}'"))
            hist = series.get("histogram")
            if isinstance(hist, dict) and isinstance(hist.get("bins"), list):
                binned = sum(b for b in hist["bins"] if isinstance(b, (int, float)))
                if isinstance(series.get("count"), (int, float)) and binned != series["count"]:
                    problems.append(
                        fail(path, f"{kind} '{name}' histogram bins sum to {binned}, "
                                   f"count is {series['count']}"))
    return problems


# ARPB binary shard-manifest container (telemetry/binfmt.hpp).  This is an
# independent Python decode of the same wire layout, so a C++ encoder bug
# that its own decoder happens to tolerate still fails CI.
BINFMT_MAGIC = b"ARPB"
BINFMT_VERSION = 1
BINFMT_MAX_NAME = 256
BINFMT_MAX_HIST_BINS = 1 << 20
SERIES_HEADER_KEYS = ("offset", "total", "hist_lo", "hist_hi", "hist_bins")


def validate_binary(path: Path) -> list[str]:
    try:
        wire = path.read_bytes()
    except OSError as e:
        return [fail(path, f"unreadable: {e}")]

    def truncated(what: str) -> list[str]:
        return [fail(path, f"truncated inside {what}")]

    if len(wire) < 16:
        return truncated("header")
    if wire[:4] != BINFMT_MAGIC:
        return [fail(path, f"bad magic {wire[:4]!r} (expected {BINFMT_MAGIC!r})")]
    version, reserved, meta_len = struct.unpack_from("<HHQ", wire, 4)
    if version != BINFMT_VERSION:
        return [fail(path, f"unsupported format version {version}")]
    if reserved != 0:
        return [fail(path, "reserved header bytes are nonzero")]
    pos = 16
    if len(wire) - pos < meta_len:
        return truncated("metadata document")
    try:
        metadata = json.loads(wire[pos:pos + meta_len])
    except (json.JSONDecodeError, UnicodeDecodeError) as e:
        return [fail(path, f"metadata is not valid JSON: {e}")]
    pos += meta_len
    problems = validate_manifest_doc(metadata, path)

    if len(wire) - pos < 4:
        return problems + truncated("series count")
    (series_count,) = struct.unpack_from("<I", wire, pos)
    pos += 4
    series = {}
    for i in range(series_count):
        if len(wire) - pos < 2:
            return problems + truncated(f"series[{i}] name length")
        (name_len,) = struct.unpack_from("<H", wire, pos)
        pos += 2
        if not 1 <= name_len <= BINFMT_MAX_NAME:
            return problems + [fail(path, f"series[{i}] name length {name_len} out of range")]
        if len(wire) - pos < name_len:
            return problems + truncated(f"series[{i}] name")
        name = wire[pos:pos + name_len].decode("utf-8", errors="replace")
        pos += name_len
        if name in series:
            return problems + [fail(path, f"duplicate series '{name}'")]
        if len(wire) - pos < 44:
            return problems + truncated(f"series '{name}' header")
        offset, total, hist_lo, hist_hi, hist_bins, count = struct.unpack_from(
            "<QQddIQ", wire, pos)
        pos += 44
        if not 1 <= hist_bins <= BINFMT_MAX_HIST_BINS:
            problems.append(fail(path, f"series '{name}' hist_bins {hist_bins} out of range"))
        pad = (-pos) % 8
        if wire[pos:pos + pad] != b"\x00" * pad:
            return problems + [fail(path, f"series '{name}' has nonzero alignment padding")]
        pos += pad
        if count > (len(wire) - pos) // 8:
            return problems + [fail(path, f"series '{name}' declares {count} values "
                                          "but they do not fit in the file")]
        if offset > total or count > total - offset:
            problems.append(fail(path, f"series '{name}' slice [{offset}, +{count}) "
                                       f"exceeds its total {total}"))
        series[name] = {"offset": offset, "total": total, "hist_lo": hist_lo,
                        "hist_hi": hist_hi, "hist_bins": hist_bins}
        pos += count * 8
    if pos != len(wire):
        problems.append(fail(path, f"{len(wire) - pos} trailing bytes after the last series"))

    # The metadata's results.samples section and the series blocks must
    # describe the same payload.
    samples = metadata.get("results", {}).get("samples", {}) if isinstance(
        metadata, dict) else {}
    if not isinstance(samples, dict):
        samples = {}
    if set(samples) != set(series):
        problems.append(fail(path, f"metadata sample names {sorted(samples)} disagree "
                                   f"with series blocks {sorted(series)}"))
    for name in set(samples) & set(series):
        header = samples[name]
        if not isinstance(header, dict):
            problems.append(fail(path, f"metadata samples '{name}' is not an object"))
            continue
        if "values" in header:
            problems.append(fail(path, f"metadata samples '{name}' embeds a values array "
                                       "(payload duplicated)"))
        for key in SERIES_HEADER_KEYS:
            if header.get(key) != series[name][key]:
                problems.append(fail(path, f"metadata samples '{name}' key '{key}' "
                                           f"({header.get(key)!r}) disagrees with the series "
                                           f"block ({series[name][key]!r})"))
    return problems


def validate_auth_store(path: Path) -> list[str]:
    """Independent decoder for ARPS enrollment stores (src/auth/store_binary.hpp).

    Re-implements the wire spec from the layout comment rather than calling
    the C++ reader, so an encoder bug the C++ decoder happens to tolerate
    still fails here: header ranges, exact file size, and a strictly
    increasing device index.
    """
    try:
        wire = path.read_bytes()
    except OSError as e:
        return [fail(path, f"unreadable: {e}")]

    if len(wire) < 40:
        return [fail(path, "truncated inside the 40-byte header")]
    if wire[:4] != b"ARPS":
        return [fail(path, f"bad magic {wire[:4]!r} (expected b'ARPS')")]
    version, reserved, device_count, response_bits, helper_bits, tag_bytes, model, \
        fleet_seed = struct.unpack_from("<HHQIIIIQ", wire, 4)
    if version != 1:
        return [fail(path, f"unsupported store version {version}")]
    if reserved != 0:
        return [fail(path, "reserved header bytes are nonzero")]
    problems = []
    if tag_bytes != 32:
        problems.append(fail(path, f"tag_bytes {tag_bytes} (expected 32)"))
    if response_bits == 0 and helper_bits == 0:
        problems.append(fail(path, "store carries neither responses nor helper data"))
    if response_bits > 1 << 20 or helper_bits > 1 << 20:
        problems.append(fail(path, f"unreasonable bit widths R={response_bits} "
                                   f"H={helper_bits}"))
    stride = (response_bits + 7) // 8 + (helper_bits + 7) // 8 + tag_bytes
    expected = 40 + device_count * (8 + stride)
    if len(wire) != expected:
        return problems + [fail(path, f"file is {len(wire)} bytes but the header "
                                      f"implies {expected} "
                                      f"(N={device_count}, stride={stride})")]
    prev = -1
    for i in range(device_count):
        (device_id,) = struct.unpack_from("<Q", wire, 40 + 8 * i)
        if device_id <= prev:
            problems.append(fail(path, f"device index not strictly increasing "
                                       f"at entry {i} ({device_id:#x} after {prev:#x})"))
            break
        prev = device_id
    if not problems:
        print(f"{path}: {device_count} devices, {response_bits}-bit responses, "
              f"{helper_bits}-bit helper data, model {model}, seed {fleet_seed}")
    return problems


def validate_progress(path: Path) -> list[str]:
    try:
        text = path.read_text()
    except OSError as e:
        return [fail(path, f"unreadable: {e}")]
    problems = []
    beats = 0
    lines = text.splitlines()
    # A file that does not end in a newline was byte-truncated or caught
    # mid-append: the torn final line is a writer artifact the incremental
    # reader also buffers rather than rejects, so skip it here too.
    if text and not text.endswith("\n") and lines:
        lines = lines[:-1]
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            beat = json.loads(line)
        except json.JSONDecodeError:
            problems.append(fail(path, f"line {i + 1} is not valid JSON"))
            continue
        if not isinstance(beat, dict):
            problems.append(fail(path, f"line {i + 1} is not an object"))
            continue
        beats += 1
        for key, ok in HEARTBEAT_KEYS.items():
            if key not in beat:
                problems.append(fail(path, f"line {i + 1} missing '{key}'"))
            elif not ok(beat[key]):
                problems.append(fail(path, f"line {i + 1} key '{key}' invalid"))
        if isinstance(beat.get("done"), (int, float)) and isinstance(
                beat.get("total"), (int, float)) and beat["done"] > beat["total"]:
            problems.append(fail(path, f"line {i + 1} has done > total"))
    if beats == 0:
        problems.append(fail(path, "no heartbeat lines"))
    return problems


# resource.jsonl (telemetry/prof.hpp ResourceSampler): one sample object per
# line.  Timestamps are derived from a cached epoch plus the steady clock, so
# they must be strictly positive and non-decreasing across the file.
RESOURCE_KEYS = {
    "ts_unix_ms": lambda v: isinstance(v, (int, float)) and v > 0,
    "rss_kib": lambda v: isinstance(v, (int, float)) and v >= 0,
    "peak_rss_kib": lambda v: isinstance(v, (int, float)) and v >= 0,
    "cpu_user_ms": lambda v: isinstance(v, (int, float)) and v >= 0,
    "cpu_sys_ms": lambda v: isinstance(v, (int, float)) and v >= 0,
    "cpu_pct": lambda v: isinstance(v, (int, float)) and v >= 0,
    "threads": lambda v: isinstance(v, (int, float)) and v >= 0,
}


def validate_resource(path: Path) -> list[str]:
    try:
        text = path.read_text()
    except OSError as e:
        return [fail(path, f"unreadable: {e}")]
    problems = []
    samples = 0
    prev_ts = None
    lines = text.splitlines()
    # Same torn-final-line tolerance as the heartbeat reader: the sampler may
    # be killed mid-append, and a byte-truncated last line is a writer
    # artifact rather than a schema violation.
    if text and not text.endswith("\n") and lines:
        lines = lines[:-1]
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            sample = json.loads(line)
        except json.JSONDecodeError:
            problems.append(fail(path, f"line {i + 1} is not valid JSON"))
            continue
        if not isinstance(sample, dict):
            problems.append(fail(path, f"line {i + 1} is not an object"))
            continue
        samples += 1
        for key, ok in RESOURCE_KEYS.items():
            if key not in sample:
                problems.append(fail(path, f"line {i + 1} missing '{key}'"))
            elif not ok(sample[key]):
                problems.append(fail(path, f"line {i + 1} key '{key}' invalid"))
        ts = sample.get("ts_unix_ms")
        if isinstance(ts, (int, float)):
            if prev_ts is not None and ts < prev_ts:
                problems.append(fail(path, f"line {i + 1} timestamp went backwards "
                                           f"({ts} < {prev_ts})"))
            prev_ts = ts
        rss = sample.get("rss_kib")
        peak = sample.get("peak_rss_kib")
        if isinstance(rss, (int, float)) and isinstance(peak, (int, float)) and \
                peak > 0 and rss > peak:
            problems.append(fail(path, f"line {i + 1} has rss_kib > peak_rss_kib"))
    if samples == 0:
        problems.append(fail(path, "no resource samples"))
    return problems


# fleet_metrics.json (net/fleet_view.hpp fleet_metrics_json()).
FLEET_METRICS_SCHEMA = "aropuf-fleet-metrics"
FLEET_METRICS_VERSION = 1
FLEET_METRICS_KEYS = {
    "schema": lambda v: v == FLEET_METRICS_SCHEMA,
    "schema_version": lambda v: v == FLEET_METRICS_VERSION,
    "run": lambda v: isinstance(v, str) and v != "",
    "trace_id": lambda v: isinstance(v, str),
    "created_unix_ms": lambda v: isinstance(v, (int, float)) and v > 0,
    "elapsed_ms": lambda v: isinstance(v, (int, float)) and v >= 0,
    "shards": lambda v: isinstance(v, dict),
    "workers": lambda v: isinstance(v, list),
    "history": lambda v: isinstance(v, list),
}
FLEET_SHARD_KEYS = ("total", "done", "failed", "reassigned", "in_flight", "queued")
FLEET_WORKER_KEYS = {
    "name": lambda v: isinstance(v, str) and v != "",
    "pid": lambda v: isinstance(v, (int, float)) and v >= 2,
    "connected": lambda v: isinstance(v, bool),
    "jobs_assigned": lambda v: isinstance(v, (int, float)) and v >= 0,
    "jobs_done": lambda v: isinstance(v, (int, float)) and v >= 0,
    "failed_attempts": lambda v: isinstance(v, (int, float)) and v >= 0,
    "snapshots": lambda v: isinstance(v, (int, float)) and v >= 0,
    "clock_offset_ms": lambda v: isinstance(v, (int, float)),
    "busy_ms": lambda v: isinstance(v, (int, float)) and v >= 0,
    "utilization": lambda v: isinstance(v, (int, float)) and 0 <= v <= 1,
    "straggler": lambda v: isinstance(v, bool),
    "metrics": lambda v: isinstance(v, dict),
}


def validate_fleet_metrics(path: Path) -> list[str]:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [fail(path, f"unreadable or invalid JSON: {e}")]
    if not isinstance(doc, dict):
        return [fail(path, "top level must be a JSON object")]
    problems = []
    for key, ok in FLEET_METRICS_KEYS.items():
        if key not in doc:
            problems.append(fail(path, f"missing required key '{key}'"))
        elif not ok(doc[key]):
            problems.append(fail(path, f"key '{key}' has invalid value {doc[key]!r}"))
    shards = doc.get("shards", {})
    if isinstance(shards, dict):
        for key in FLEET_SHARD_KEYS:
            if not isinstance(shards.get(key), (int, float)) or shards[key] < 0:
                problems.append(fail(path, f"shards key '{key}' missing or invalid"))
        counted = [shards.get(k) for k in ("done", "failed", "in_flight", "queued")]
        if all(isinstance(v, (int, float)) for v in counted) and isinstance(
                shards.get("total"), (int, float)) and sum(counted) != shards["total"]:
            problems.append(fail(path, f"shard states sum to {sum(counted)}, "
                                       f"total is {shards['total']}"))
    workers = doc.get("workers", [])
    jobs_done_sum = 0
    if isinstance(workers, list):
        for i, worker in enumerate(workers):
            if not isinstance(worker, dict):
                problems.append(fail(path, f"workers[{i}] is not an object"))
                continue
            for key, ok in FLEET_WORKER_KEYS.items():
                if key not in worker:
                    problems.append(fail(path, f"workers[{i}] missing '{key}'"))
                elif not ok(worker[key]):
                    problems.append(fail(path, f"workers[{i}] key '{key}' invalid"))
            if isinstance(worker.get("jobs_done"), (int, float)):
                jobs_done_sum += worker["jobs_done"]
        # The acceptance invariant: per-worker accepted results account for
        # every folded shard, reassignments included — no result is double-
        # counted and none vanish.
        if isinstance(shards, dict) and isinstance(shards.get("done"), (int, float)):
            if jobs_done_sum != shards["done"]:
                problems.append(fail(path, f"per-worker jobs_done sum to {jobs_done_sum}, "
                                           f"shards.done is {shards['done']}"))
    for i, entry in enumerate(doc.get("history", []) if isinstance(doc.get("history"), list)
                              else []):
        if not isinstance(entry, dict) or not isinstance(entry.get("event"), str):
            problems.append(fail(path, f"history[{i}] missing event name"))
    return problems


def strip_raw_values(doc: dict) -> dict:
    """Drops the embedded per-chip value arrays from results.samples.

    diff-stats compares the *statistics* for invariance, and a kept-policy
    aggregate must compare equal to a dropped-policy one over the same study:
    the values arrays are a payload difference by design, not a statistics
    difference.
    """
    if not isinstance(doc, dict):
        return doc
    results = doc.get("results")
    samples = results.get("samples") if isinstance(results, dict) else None
    if isinstance(samples, dict):
        for series in samples.values():
            if isinstance(series, dict):
                series.pop("values", None)
    return doc


def diff_stats(path_a: Path, path_b: Path, *, ignore_raw_policy: bool = False) -> list[str]:
    docs = []
    for path in (path_a, path_b):
        try:
            docs.append(strip_raw_values(json.loads(path.read_text())))
        except (OSError, json.JSONDecodeError) as e:
            return [fail(path, f"unreadable or invalid JSON: {e}")]
    problems = []
    # A kept-vs-dropped comparison is only *statistically* equal: one side has
    # discarded its raw series, so "identical" would overstate what was
    # checked.  Refuse unless the caller opts in explicitly.
    policy_a = docs[0].get("raw_series")
    policy_b = docs[1].get("raw_series")
    if policy_a != policy_b and not ignore_raw_policy:
        problems.append(
            f"raw_series policy differs: {path_a} is {policy_a!r} but {path_b} is "
            f"{policy_b!r}; pass --ignore-raw-policy to compare statistics only")
    for section in INVARIANT_SECTIONS:
        a = docs[0].get(section)
        b = docs[1].get(section)
        if (a is None) != (b is None):
            problems.append(f"section '{section}' present in only one manifest")
            continue
        if a is None:
            continue
        # Canonical dumps compare numbers by their exact JSON token (repr of
        # the parsed float), so equality here is bit-identity of the doubles.
        if json.dumps(a, sort_keys=True) != json.dumps(b, sort_keys=True):
            problems.append(
                f"section '{section}' differs between {path_a} and {path_b} "
                "(shard decomposition changed the statistics)")
    return problems


def validate_trace(path: Path) -> list[str]:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [fail(path, f"unreadable or invalid JSON: {e}")]
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return [fail(path, "expected an object with a 'traceEvents' array")]
    problems = []
    events = doc["traceEvents"]
    if not events:
        problems.append(fail(path, "traceEvents is empty"))
    saw_complete = False
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(fail(path, f"traceEvents[{i}] is not an object"))
            continue
        for key in TRACE_EVENT_KEYS:
            if key not in event:
                problems.append(fail(path, f"traceEvents[{i}] missing '{key}'"))
        ph = event.get("ph")
        if ph == "X":
            saw_complete = True
            if not isinstance(event.get("dur"), (int, float)) or event["dur"] < 0:
                problems.append(fail(path, f"traceEvents[{i}] 'X' event needs numeric 'dur'"))
            if not isinstance(event.get("ts"), (int, float)) or event["ts"] < 0:
                problems.append(fail(path, f"traceEvents[{i}] needs numeric 'ts'"))
        elif ph == "C":
            # Counter events (resource sampler): instantaneous, so no 'dur';
            # the args object carries the numeric series Perfetto plots.
            if "dur" in event:
                problems.append(fail(path, f"traceEvents[{i}] 'C' event must not carry 'dur'"))
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(fail(path, f"traceEvents[{i}] 'C' event needs a non-empty args object"))
            else:
                for key, value in args.items():
                    if not isinstance(value, (int, float)):
                        problems.append(fail(
                            path, f"traceEvents[{i}] 'C' series '{key}' is not numeric"))
        elif ph not in ("M",):
            problems.append(fail(path, f"traceEvents[{i}] unexpected ph {ph!r}"))
    if events and not saw_complete:
        problems.append(fail(path, "no complete ('X') span events"))
    return problems


def main(argv: list[str]) -> int:
    args = argv[1:]
    mode = "manifest"
    modes = {
        "--trace": "trace",
        "--aggregate": "aggregate",
        "--progress": "progress",
        "--resource": "resource",
        "--binary": "binary",
        "--auth-store": "auth-store",
        "--fleet-metrics": "fleet-metrics",
        "--diff-stats": "diff-stats",
    }
    if args and args[0] in modes:
        mode = modes[args[0]]
        args = args[1:]
    ignore_raw_policy = "--ignore-raw-policy" in args
    args = [a for a in args if a != "--ignore-raw-policy"]
    if not args or (mode == "diff-stats" and len(args) != 2):
        print(__doc__.strip(), file=sys.stderr)
        return 1

    if mode == "diff-stats":
        problems = diff_stats(Path(args[0]), Path(args[1]),
                              ignore_raw_policy=ignore_raw_policy)
        for p in problems:
            print(p, file=sys.stderr)
        if not problems:
            print(f"invariant sections {INVARIANT_SECTIONS} are identical")
        return 1 if problems else 0

    validate = {
        "manifest": validate_manifest,
        "trace": validate_trace,
        "aggregate": validate_aggregate,
        "progress": validate_progress,
        "resource": validate_resource,
        "binary": validate_binary,
        "auth-store": validate_auth_store,
        "fleet-metrics": validate_fleet_metrics,
    }[mode]
    problems = []
    for name in args:
        problems.extend(validate(Path(name)))
    for p in problems:
        print(p, file=sys.stderr)
    if not problems:
        print(f"{len(args)} {mode} file(s) OK")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
