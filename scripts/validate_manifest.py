#!/usr/bin/env python3
"""Schema validator for aropuf run manifests and Chrome-trace files.

Run manifests (telemetry/manifest.hpp, DESIGN.md §8.4) are the
machine-readable provenance record every bench/example can emit
(AROPUF_MANIFEST=path, or ARO_CSV_DIR fallback).  CI runs a scenario with
manifests and tracing enabled and validates both artifacts here, so a
serialization regression fails the build instead of silently producing
files Perfetto or the shard-merge driver cannot read.

Usage:
  validate_manifest.py manifest.json [more.json ...]   # manifest schema
  validate_manifest.py --trace trace.json [...]        # Chrome-trace format

Exit code 0 when every file validates, 1 otherwise (one line per problem).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA = "aropuf-run-manifest"
SCHEMA_VERSION = 1

# Key -> predicate over the parsed JSON value.  Every key is required:
# build_manifest() fills defaults for facts no subsystem reported, so an
# absent key always means a serialization bug, not a quiet run.
MANIFEST_KEYS = {
    "schema": lambda v: v == SCHEMA,
    "schema_version": lambda v: v == SCHEMA_VERSION,
    "run": lambda v: isinstance(v, str) and v != "",
    "created_unix_ms": lambda v: isinstance(v, (int, float)) and v > 0,
    "git_sha": lambda v: isinstance(v, str) and v != "",
    "build": lambda v: isinstance(v, dict) and isinstance(v.get("type"), str)
    and isinstance(v.get("simd_compiled"), bool),
    "config": lambda v: isinstance(v, dict),
    "threads": lambda v: isinstance(v, (int, float)) and v >= 0,
    "kernel_backend": lambda v: v in ("reference", "batched", "simd", "unknown"),
    "stages": lambda v: isinstance(v, list),
    "metrics": lambda v: isinstance(v, dict) and isinstance(v.get("counters"), dict)
    and isinstance(v.get("gauges"), dict) and isinstance(v.get("histograms"), dict),
}

STAGE_KEYS = {
    "name": lambda v: isinstance(v, str) and v != "",
    "wall_ms": lambda v: isinstance(v, (int, float)) and v >= 0,
    "cpu_ms": lambda v: isinstance(v, (int, float)) and v >= 0,
}

# Required on every trace event, metadata ("M") records included — the
# serializer deliberately stamps ts/tid on those too so this stays simple.
TRACE_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


def fail(path: Path, message: str) -> str:
    return f"{path}: {message}"


def validate_manifest(path: Path) -> list[str]:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [fail(path, f"unreadable or invalid JSON: {e}")]
    if not isinstance(doc, dict):
        return [fail(path, "top level must be a JSON object")]
    problems = []
    for key, ok in MANIFEST_KEYS.items():
        if key not in doc:
            problems.append(fail(path, f"missing required key '{key}'"))
        elif not ok(doc[key]):
            problems.append(fail(path, f"key '{key}' has invalid value {doc[key]!r}"))
    for i, stage in enumerate(doc.get("stages", [])):
        if not isinstance(stage, dict):
            problems.append(fail(path, f"stages[{i}] is not an object"))
            continue
        for key, ok in STAGE_KEYS.items():
            if key not in stage or not ok(stage[key]):
                problems.append(fail(path, f"stages[{i}] key '{key}' missing or invalid"))
    for name, value in doc.get("metrics", {}).get("counters", {}).items():
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(fail(path, f"counter '{name}' is not a non-negative number"))
    return problems


def validate_trace(path: Path) -> list[str]:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [fail(path, f"unreadable or invalid JSON: {e}")]
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return [fail(path, "expected an object with a 'traceEvents' array")]
    problems = []
    events = doc["traceEvents"]
    if not events:
        problems.append(fail(path, "traceEvents is empty"))
    saw_complete = False
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(fail(path, f"traceEvents[{i}] is not an object"))
            continue
        for key in TRACE_EVENT_KEYS:
            if key not in event:
                problems.append(fail(path, f"traceEvents[{i}] missing '{key}'"))
        ph = event.get("ph")
        if ph == "X":
            saw_complete = True
            if not isinstance(event.get("dur"), (int, float)) or event["dur"] < 0:
                problems.append(fail(path, f"traceEvents[{i}] 'X' event needs numeric 'dur'"))
            if not isinstance(event.get("ts"), (int, float)) or event["ts"] < 0:
                problems.append(fail(path, f"traceEvents[{i}] needs numeric 'ts'"))
        elif ph not in ("M",):
            problems.append(fail(path, f"traceEvents[{i}] unexpected ph {ph!r}"))
    if events and not saw_complete:
        problems.append(fail(path, "no complete ('X') span events"))
    return problems


def main(argv: list[str]) -> int:
    args = argv[1:]
    trace_mode = False
    if args and args[0] == "--trace":
        trace_mode = True
        args = args[1:]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    validate = validate_trace if trace_mode else validate_manifest
    problems = []
    for name in args:
        problems.extend(validate(Path(name)))
    for p in problems:
        print(p, file=sys.stderr)
    if not problems:
        kind = "trace" if trace_mode else "manifest"
        print(f"{len(args)} {kind} file(s) OK")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
