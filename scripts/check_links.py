#!/usr/bin/env python3
"""Dead-reference checker for the repository's markdown documentation.

Docs here cross-reference source files heavily ("see src/circuit/delay_kernel.hpp")
and those references rot silently when files move.  This script walks the
given markdown files and fails when a referenced repo path does not exist.

Two reference forms are checked:
  * markdown links  [text](relative/path)  — resolved against the md file's
    directory, then against the repo root; http(s)/mailto/# links are skipped;
  * backticked path tokens  `src/foo/bar.hpp`, `scripts/perf_gate.py`,
    `src/circuit/delay_kernel.{hpp,cpp}` — any token containing a '/' that
    looks like a file path.  Brace groups expand ({hpp,cpp} checks both),
    a trailing :line anchor is dropped, and tokens with wildcards or shell
    syntax are ignored.

Paths under build trees are skipped: they are generated, not tracked.

Arguments may be markdown files or directories; a directory is crawled
recursively for *.md (so `check_links.py docs/` covers every runbook without
the CI invocation needing an update per new file).

Usage: check_links.py README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BACKTICK = re.compile(r"`([^`\n]+)`")
# A backticked token is treated as a path when it is purely path-shaped and
# contains a directory separator (so `a / b` prose or code snippets don't match).
PATH_TOKEN = re.compile(r"^[A-Za-z0-9_.{},/-]+$")
LINE_ANCHOR = re.compile(r":\d+(?:-\d+)?$")
BRACE_GROUP = re.compile(r"\{([^{}]*)\}")


def expand_braces(token: str) -> list[str]:
    """delay_kernel.{hpp,cpp} -> [delay_kernel.hpp, delay_kernel.cpp]."""
    match = BRACE_GROUP.search(token)
    if not match:
        return [token]
    head, tail = token[: match.start()], token[match.end():]
    expanded: list[str] = []
    for option in match.group(1).split(","):
        expanded.extend(expand_braces(head + option + tail))
    return expanded


def is_checkable(token: str) -> bool:
    if "/" not in token or not PATH_TOKEN.match(token):
        return False
    if "*" in token or token.startswith("-"):
        return False
    first = token.split("/", 1)[0]
    if first.startswith("build"):
        return False  # generated build trees
    # Only flag references into the repo, not abstract paths like a/b.
    return (REPO_ROOT / first).exists()


def exists_as_target(path: Path) -> bool:
    """True for extensionless build-target references like `tools/aropuf_fleet`
    whose source file exists — docs name binaries by target, not by .cpp."""
    if path.suffix:
        return False
    return any(path.with_suffix(ext).exists() for ext in (".cpp", ".hpp"))


def check_file(md_file: Path) -> list[str]:
    errors: list[str] = []
    text = md_file.read_text()
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue

        candidates: list[str] = []
        if not in_fence:
            for target in MD_LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                candidates.append(target.split("#", 1)[0])
        # Backticked paths are checked even inside fences: command examples
        # referring to missing scripts are exactly the rot we want to catch.
        for token in BACKTICK.findall(line):
            token = LINE_ANCHOR.sub("", token.strip())
            if is_checkable(token):
                candidates.append(token)

        for candidate in candidates:
            for path in expand_braces(candidate):
                resolved_local = (md_file.parent / path).resolve()
                resolved_root = (REPO_ROOT / path).resolve()
                if not resolved_root.is_relative_to(REPO_ROOT):
                    continue  # escapes the repo (e.g. GitHub-relative badge URLs)
                if (not resolved_local.exists() and not resolved_root.exists()
                        and not exists_as_target(resolved_root)):
                    label = (md_file.relative_to(REPO_ROOT)
                             if md_file.is_relative_to(REPO_ROOT) else md_file)
                    errors.append(f"{label}:{lineno}: dead reference `{path}`")
    return errors


def collect_markdown(arg: Path) -> list[Path]:
    """A file is taken as-is; a directory is crawled recursively for *.md."""
    if arg.is_dir():
        return sorted(p for p in arg.rglob("*.md") if "build" not in p.parts)
    return [arg]


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    all_errors: list[str] = []
    checked = 0
    for name in argv[1:]:
        arg = Path(name).resolve()
        if not arg.exists():
            all_errors.append(f"{name}: file not found")
            continue
        md_files = collect_markdown(arg)
        if arg.is_dir() and not md_files:
            all_errors.append(f"{name}: directory holds no markdown files")
            continue
        for md_file in md_files:
            all_errors.extend(check_file(md_file))
            checked += 1
    if all_errors:
        print("dead documentation references:")
        for error in all_errors:
            print(f"  {error}")
        return 1
    print(f"link check passed ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
