// Shared synthetic-shard builder for the fold-throughput benchmarks
// (bench_micro's gated BM_FoldShard* pair and the standalone
// bench_fold_throughput).  Produces the same shard payload in both transport
// forms so the two measurements differ only in the wire format.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "telemetry/binfmt.hpp"
#include "telemetry/manifest.hpp"

namespace aropuf::bench {

/// One synthetic shard covering all of [0, chips): `series_count` sample
/// series of `chips` doubles each, deterministic values.
struct SyntheticShard {
  JsonValue metadata;  ///< manifest doc, headers only (binary-transport form)
  std::vector<telemetry::BinarySeries> series;
};

inline SyntheticShard make_synthetic_shard(std::size_t chips, std::size_t series_count) {
  SyntheticShard out;
  std::mt19937_64 rng(2014);
  std::uniform_real_distribution<double> value(0.0, 1.0);
  JsonValue::Object samples;
  for (std::size_t i = 0; i < series_count; ++i) {
    telemetry::BinarySeries s;
    s.name = "bench.series_" + std::to_string(i);
    s.total = chips;
    s.values.resize(chips);
    for (double& v : s.values) v = value(rng);
    JsonValue::Object header;
    header["offset"] = JsonValue(static_cast<std::uint64_t>(0));
    header["total"] = JsonValue(static_cast<std::uint64_t>(chips));
    header["hist_lo"] = JsonValue(s.hist_lo);
    header["hist_hi"] = JsonValue(s.hist_hi);
    header["hist_bins"] = JsonValue(static_cast<std::uint64_t>(s.hist_bins));
    samples[s.name] = JsonValue(std::move(header));
    out.series.push_back(std::move(s));
  }

  JsonValue::Object doc;
  doc["schema"] = JsonValue(telemetry::kManifestSchema);
  doc["schema_version"] = JsonValue(telemetry::kManifestSchemaVersion);
  doc["run"] = JsonValue("fold_bench");
  doc["git_sha"] = JsonValue("bench");
  doc["kernel_backend"] = JsonValue("batched");
  doc["threads"] = JsonValue(1);
  {
    JsonValue::Object config;
    config["chips"] = JsonValue(static_cast<std::uint64_t>(chips));
    config["seed"] = JsonValue(2014);
    doc["config"] = JsonValue(std::move(config));
  }
  {
    JsonValue::Object build;
    build["type"] = JsonValue("Release");
    doc["build"] = JsonValue(std::move(build));
  }
  {
    JsonValue::Object shard;
    shard["index"] = JsonValue(0);
    shard["count"] = JsonValue(1);
    shard["chip_lo"] = JsonValue(static_cast<std::uint64_t>(0));
    shard["chip_hi"] = JsonValue(static_cast<std::uint64_t>(chips));
    doc["shard"] = JsonValue(std::move(shard));
  }
  {
    JsonValue::Object metrics;
    metrics["counters"] = JsonValue(JsonValue::Object{});
    metrics["gauges"] = JsonValue(JsonValue::Object{});
    metrics["histograms"] = JsonValue(JsonValue::Object{});
    metrics["shard"] = JsonValue(0);
    doc["metrics"] = JsonValue(std::move(metrics));
  }
  doc["stages"] = JsonValue(JsonValue::Array{});
  {
    JsonValue::Object results;
    results["samples"] = JsonValue(std::move(samples));
    results["tallies"] = JsonValue(JsonValue::Object{});
    doc["results"] = JsonValue(std::move(results));
  }
  out.metadata = JsonValue(std::move(doc));
  return out;
}

/// The same shard as a JSON-transport document (values embedded).
inline JsonValue to_json_transport(const SyntheticShard& shard) {
  JsonValue doc = shard.metadata;
  JsonValue::Object& samples =
      doc.as_object().at("results").as_object().at("samples").as_object();
  for (const telemetry::BinarySeries& s : shard.series) {
    JsonValue::Array values;
    values.reserve(s.values.size());
    for (const double v : s.values) values.emplace_back(v);
    samples.at(s.name).as_object()["values"] = JsonValue(std::move(values));
  }
  return doc;
}

}  // namespace aropuf::bench
