// E12 (extension) — technology scaling study.
//
// The paper evaluates at 90 nm; this bench re-runs the headline metrics at
// calibrated 65 nm and 45 nm parameter sets.  Scaling raises both mismatch
// (more entropy) and BTI rates (more aging): the ARO advantage persists and
// widens at smaller nodes.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  aropuf::bench::parse_args(argc, argv);
  using namespace aropuf;
  bench::banner("E12: technology scaling (90/65/45 nm)",
                "extension — headline metrics across nodes");

  Table table("10-year flips and uniqueness per node");
  table.set_header({"node", "design", "flips@10y %", "inter-chip HD %", "noise floor %"});

  for (const auto& tech :
       {TechnologyParams::cmos90(), TechnologyParams::cmos65(), TechnologyParams::cmos45()}) {
    PopulationConfig pop = bench::standard_population();
    pop.tech = tech;
    pop.chips = 25;
    for (const auto& cfg : {PufConfig::conventional(), PufConfig::aro()}) {
      const double eol[] = {10.0};
      const auto aging = run_aging_series(pop, cfg, eol);
      const auto uniq = run_uniqueness(pop, cfg);
      const double fresh[] = {0.0};
      const auto noise = run_aging_series(pop, cfg, fresh);
      table.add_row({tech.name, cfg.label, Table::num(aging.mean_flip_percent[0], 2),
                     Table::num(uniq.uniqueness.mean_percent(), 2),
                     Table::num(noise.mean_flip_percent[0], 2)});
    }
  }
  table.print(std::cout);

  std::cout << "\nshape check: the conventional design stays pinned near one-third flipped\n"
               "bits at every node (faster BTI at smaller nodes is offset by larger\n"
               "mismatch margins), the gated ARO stays in the single digits, and the\n"
               "uniqueness ordering (ARO ~50% > conventional) is node-independent.\n";
  return bench::finish("e12_scaling");
}
