// E8 — ablation of the ARO-PUF's mechanisms.
//
// The ARO design combines three levers; this bench isolates each:
//   gating    — enable/power gating (stress only during evaluations)
//   recovery  — idle state permits NBTI relaxation
//   pairing   — adjacent (systematic-cancelling) vs distant pairs
//
// Output: 10-year flips and inter-chip HD for every combination the design
// space allows, showing gating drives reliability and pairing drives
// uniqueness — exactly the paper's design-choice story.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

namespace {

aropuf::PufConfig variant(const std::string& label, aropuf::PairingStrategy pairing,
                          const aropuf::StressProfile& profile) {
  aropuf::PufConfig c;
  c.design = aropuf::PufDesign::kCustom;
  c.label = label;
  c.pairing = pairing;
  c.lifetime_profile = profile;
  c.validate();
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  aropuf::bench::parse_args(argc, argv);
  using namespace aropuf;
  bench::banner("E8: ablation of ARO mechanisms",
                "design-choice analysis (gating / recovery / pairing)");

  const PopulationConfig pop = bench::standard_population();

  StressProfile gated_no_recovery = StressProfile::aro_gated(20.0, 10e-3);
  gated_no_recovery.recovery_enabled = false;
  gated_no_recovery.name = "gated-no-recovery";

  const std::vector<PufConfig> variants = {
      variant("conventional (distant, always-on)", PairingStrategy::kDistantDedicated,
              StressProfile::conventional_always_on()),
      variant("+ static idle (distant, parked, no recovery)",
              PairingStrategy::kDistantDedicated, StressProfile::static_enabled_idle()),
      variant("+ gating only (distant, gated)", PairingStrategy::kDistantDedicated,
              StressProfile::aro_gated(20.0, 10e-3)),
      variant("+ pairing only (adjacent, always-on)", PairingStrategy::kAdjacentDedicated,
              StressProfile::conventional_always_on()),
      variant("gated w/o recovery (adjacent)", PairingStrategy::kAdjacentDedicated,
              gated_no_recovery),
      variant("full ARO (adjacent, gated, recovery)", PairingStrategy::kAdjacentDedicated,
              StressProfile::aro_gated(20.0, 10e-3)),
  };

  const double checkpoints[] = {10.0};
  Table table("10-year flips and uniqueness per design variant");
  table.set_header({"variant", "flips@10y mean %", "flips@10y worst %", "inter-chip HD %"});
  for (const auto& cfg : variants) {
    const auto aging = run_aging_series(pop, cfg, checkpoints);
    const auto uniq = run_uniqueness(pop, cfg);
    table.add_row({cfg.label, Table::num(aging.mean_flip_percent[0], 2),
                   Table::num(aging.max_flip_percent[0], 2),
                   Table::num(uniq.uniqueness.mean_percent(), 2)});
  }
  // Burn-in row (the paper's future-work lever): one month of accelerated
  // 125 C stress before enrollment front-loads the t^(1/6) damage.
  {
    StressProfile oven = StressProfile::conventional_always_on();
    oven.stress_temperature = celsius(125.0);
    oven.name = "burn-in-oven";
    const PufConfig conv = PufConfig::conventional();
    const auto burned =
        run_aging_series_with_burnin(pop, conv, oven, years(1.0 / 12.0), checkpoints);
    const auto uniq = run_uniqueness(pop, conv);
    table.add_row({"conventional + 1-month 125C burn-in",
                   Table::num(burned.mean_flip_percent[0], 2),
                   Table::num(burned.max_flip_percent[0], 2),
                   Table::num(uniq.uniqueness.mean_percent(), 2)});
  }
  table.print(std::cout);

  std::cout << "\nshape check: gating collapses flips regardless of pairing; adjacent\n"
               "pairing lifts inter-chip HD to ~50% regardless of stress; recovery\n"
               "contributes a further modest flip reduction on top of gating.  Burn-in\n"
               "rescues even the always-on design by spending the steep early t^(1/6)\n"
               "segment before enrollment — at the cost of a month of oven time and\n"
               "~9% of the fresh frequency.\n";
  return bench::finish("e8_ablation");
}
