// E15 — fleet verification service throughput.
//
// Builds a synthetic-fleet ARPS store in memory, then sweeps the verify
// workload across thread counts and cache configurations, printing the
// auth/sec, tail-latency, and cache-effectiveness rows EXPERIMENTS.md
// records.  The decision digest is printed per row: every row of a sweep
// must show the same digest (the workload is bit-deterministic), so a
// mismatch is immediately visible in the output.
//
//   $ ./bench_auth_service [--devices N] [--requests M] [--cache CAP]
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "auth/auth_service.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "keygen/sha256.hpp"
#include "sim/parallel.hpp"
#include "telemetry/manifest.hpp"

int main(int argc, char** argv) {
  using namespace aropuf;

  std::uint64_t devices = 50000;
  std::uint64_t requests = 200000;
  std::uint64_t cache = 4096;
  cli::Parser parser("bench_auth_service",
                     "verification throughput vs thread count and hot-device cache");
  parser.opt_uint64("--devices", &devices, "N", "fleet size")
      .opt_uint64("--requests", &requests, "M", "verification requests per row")
      .opt_uint64("--cache", &cache, "CAP", "LRU capacity for the cached rows")
      .allow_unknown()
      .with_env_help();
  switch (parser.parse(argc, argv)) {
    case cli::ParseStatus::kOk: break;
    case cli::ParseStatus::kHelp: return 0;
    case cli::ParseStatus::kError: return 2;
  }

  FleetConfig fleet;
  fleet.devices = devices;
  fleet.seed = 2014;
  const std::string store_path = "bench_auth_store.arps";
  std::printf("building %llu-device store...\n", static_cast<unsigned long long>(devices));
  build_fleet_shard(fleet, 0, 1, store_path);
  std::shared_ptr<BinaryEnrollmentStore> store = BinaryEnrollmentStore::open(store_path);

  const AuthPolicy policy = AuthPolicy::for_false_accept_rate(fleet.response_bits, 1e-6);
  WorkloadConfig cfg;
  cfg.requests = requests;

  Table table("verify workload: " + std::to_string(requests) + " requests, " +
              std::to_string(devices) + " devices, 90% traffic on the hot 1%");
  table.set_header({"threads", "cache", "auth/sec", "p50 us", "p99 us", "hit %", "digest"});

  JsonValue::Array rows;
  for (const int threads : {1, 2, 4, 8}) {
    for (const std::uint64_t cap : {std::uint64_t{0}, cache}) {
      ParallelExecutor::set_global_thread_count(threads);
      Authenticator auth(policy, store, fleet_verifier_key(fleet.seed));
      if (cap > 0) auth.set_cache(static_cast<std::size_t>(cap));
      const WorkloadStats stats = run_verify_workload(auth, fleet, cfg);
      const double lookups = static_cast<double>(stats.cache_hits + stats.cache_misses);
      const double hit_pct =
          lookups > 0.0 ? 100.0 * static_cast<double>(stats.cache_hits) / lookups : 0.0;
      const std::string digest = Sha256::to_hex(stats.decisions_digest);
      table.add_row({std::to_string(threads), cap > 0 ? std::to_string(cap) : "off",
                     Table::num(stats.auth_per_sec, 0), Table::num(stats.p50_us, 2),
                     Table::num(stats.p99_us, 2), cap > 0 ? Table::num(hit_pct, 1) : "-",
                     digest.substr(0, 12)});
      JsonValue::Object row;
      row["threads"] = threads;
      row["cache"] = cap;
      row["auth_per_sec"] = stats.auth_per_sec;
      row["p50_us"] = stats.p50_us;
      row["p99_us"] = stats.p99_us;
      row["cache_hit_pct"] = hit_pct;
      row["decisions_sha256"] = digest;
      rows.push_back(JsonValue(std::move(row)));
    }
  }
  ParallelExecutor::set_global_thread_count(0);
  table.print(std::cout);
  std::remove(store_path.c_str());

  telemetry::set_runtime_field("auth_bench", JsonValue(std::move(rows)));
  JsonValue::Object config;
  config["devices"] = devices;
  config["requests"] = requests;
  config["cache"] = cache;
  return telemetry::finalize_run("bench_auth_service", JsonValue(std::move(config))) ? 0 : 1;
}
