// E7 — ECC complexity and total area for a 128-bit key (headline ~24x).
//
// Paper: "With lower error, ARO-PUF offers ~24X area reduction for a 128-bit
// key because of reduced ECC complexity and smaller PUF footprint."
//
// Protocol: measure each design's 10-year per-chip BER distribution, take
// the 90th-percentile provisioning BER (worst 10% of chips binned at test),
// and search (repetition x BCH) concatenations for the minimum total area
// meeting P[key failure] <= 1e-6.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  aropuf::bench::parse_args(argc, argv);
  using namespace aropuf;
  bench::banner("E7: ECC + PUF area for a 128-bit key (headline ~24x)",
                "Table — ECC choice, raw bits, and total area per design");

  const PopulationConfig pop = bench::standard_population();
  const BerStats conv_ber = measure_eol_ber(pop, PufConfig::conventional(), 10.0);
  const BerStats aro_ber = measure_eol_ber(pop, PufConfig::aro(), 10.0);

  Table bers("measured 10-year bit-error statistics");
  bers.set_header({"design", "mean BER %", "std %", "p90 (provisioning) %"});
  bers.add_row({"conventional", Table::num(conv_ber.mean * 100.0, 2),
                Table::num(conv_ber.stddev * 100.0, 2), Table::num(conv_ber.p90() * 100.0, 2)});
  bers.add_row({"ARO", Table::num(aro_ber.mean * 100.0, 2),
                Table::num(aro_ber.stddev * 100.0, 2), Table::num(aro_ber.p90() * 100.0, 2)});
  bers.print(std::cout);

  const CodeSearchConstraints constraints;
  const EccComparison cmp =
      run_ecc_comparison(pop.tech, conv_ber.p90(), aro_ber.p90(), constraints);

  const AreaModel area_model(pop.tech);
  Table table("minimum-area key macro @ P[key failure] <= 1e-6, 128-bit key");
  table.set_header({"design", "inner rep", "outer BCH (n,k,t)", "blocks", "raw bits", "ROs",
                    "PUF array kGE", "ECC kGE", "total kGE", "total mm^2"});
  for (const auto& [label, result] :
       {std::pair{"conventional", cmp.conventional}, std::pair{"ARO", cmp.aro}}) {
    const auto& s = result.scheme;
    const auto& a = result.area;
    std::string bch = "(";
    bch += std::to_string(s.bch_n());
    bch += ",";
    bch += std::to_string(s.bch_k());
    bch += ",";
    bch += std::to_string(s.bch_t);
    bch += ")";
    table.add_row({label, std::to_string(s.repetition), bch, std::to_string(s.blocks()),
                   std::to_string(s.raw_bits()),
                   std::to_string(AreaModel::ros_for_raw_bits(s.raw_bits())),
                   Table::num(a.puf_array_ge / 1000.0, 1),
                   Table::num((a.voter_ge + a.bch_decoder_ge + a.bch_encoder_ge) / 1000.0, 1),
                   Table::num(a.total_ge() / 1000.0, 1),
                   Table::num(area_model.ge_to_um2(a.total_ge()) / 1e6, 3)});
  }
  table.print(std::cout);

  std::cout << "\npaper:    ~24x total area reduction for a 128-bit key\n";
  std::cout << "measured: " << Table::num(cmp.area_ratio(), 1)
            << "x (key failure: conventional " << cmp.conventional.key_failure << ", ARO "
            << cmp.aro.key_failure << ")\n";
  return bench::finish("e7_ecc_area");
}
