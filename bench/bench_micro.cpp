// Micro-benchmarks (google-benchmark) for the simulation's hot kernels.
//
// These guard the throughput that makes the Monte Carlo studies cheap:
// RO frequency evaluation, full-chip response evaluation, BCH decode,
// population uniqueness, and the parallel Monte Carlo engine's scaling
// (BM_AgingSeries200 at 1/2/8 threads is the serial-vs-parallel speedup
// record for run_aging_series; target >= 4x at 8 threads on 8 cores).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "auth/auth_service.hpp"
#include "circuit/delay_kernel.hpp"
#include "ecc/bch.hpp"
#include "fold_bench_util.hpp"
#include "keygen/sha256.hpp"
#include "metrics/uniqueness.hpp"
#include "puf/ro_puf.hpp"
#include "sim/parallel.hpp"
#include "sim/scenarios.hpp"
#include "telemetry/aggregate.hpp"
#include "telemetry/prof.hpp"

namespace {

using namespace aropuf;

const TechnologyParams& tech() {
  static const TechnologyParams t = TechnologyParams::cmos90();
  return t;
}

/// Publishes a reader's hardware-counter delta as google-benchmark user
/// counters so --benchmark_format=json carries IPC / cache-miss-rate / GHz
/// columns for scripts/perf_gate.py.  Silently a no-op where counters are
/// unavailable (AROPUF_PROF off, paranoid kernel, no PMU) — the gate skips
/// the check when the columns are absent.
void attach_hw_counters(benchmark::State& state, const telemetry::CounterReader& reader) {
  const telemetry::CounterDelta d = reader.sample();
  if (!d.counters_valid) return;
  state.counters["ipc"] = benchmark::Counter(d.ipc());
  state.counters["ghz"] = benchmark::Counter(d.ghz());
  state.counters["cycles"] = benchmark::Counter(static_cast<double>(d.cycles));
  state.counters["instructions"] = benchmark::Counter(static_cast<double>(d.instructions));
  if (d.cache_valid) {
    state.counters["cache_miss_rate"] = benchmark::Counter(d.cache_miss_rate());
  }
  if (d.branch_valid) {
    state.counters["branch_misses"] = benchmark::Counter(static_cast<double>(d.branch_misses));
  }
}

void BM_RoFrequency(benchmark::State& state) {
  const DieVariation die(tech(), 1);
  Xoshiro256 rng(2);
  const RingOscillator ro(tech(), static_cast<int>(state.range(0)), {0.0, 0.0}, die, rng);
  const OperatingPoint op{tech().vdd_nominal, tech().temp_nominal};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ro.frequency(op));
  }
}
BENCHMARK(BM_RoFrequency)->Arg(5)->Arg(13)->Arg(31);

/// Kernel-level benchmark: frequency evaluation of one 256-RO chip through
/// each delay backend.  The reference row walks RingOscillator::frequency
/// per RO; batched/simd rows run one compute_frequencies pass over the SoA.
/// All rows produce bit-identical frequencies (tests enforce it), so they
/// differ only in time — this is the per-backend speedup record for the
/// delay kernel itself, independent of construction cost.
void BM_KernelFrequencies(benchmark::State& state, DelayBackend backend) {
  if (backend == DelayBackend::kSimd && !simd_available()) {
    state.SkipWithError("AVX2 kernel not available in this build/CPU");
    return;
  }
  const RoPuf chip(tech(), PufConfig::aro(256), RngFabric(7).child("chip", 0));
  const auto op = chip.nominal_op();
  const DelayBackend previous = delay_backend();
  set_delay_backend(backend);
  const telemetry::CounterReader counters;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chip.ro_frequencies(op));
  }
  attach_hw_counters(state, counters);
  set_delay_backend(previous);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK_CAPTURE(BM_KernelFrequencies, reference, DelayBackend::kReference);
BENCHMARK_CAPTURE(BM_KernelFrequencies, batched, DelayBackend::kBatched);
BENCHMARK_CAPTURE(BM_KernelFrequencies, simd, DelayBackend::kSimd);

void BM_ChipConstruction(benchmark::State& state) {
  const PufConfig cfg = PufConfig::aro(static_cast<int>(state.range(0)));
  const RngFabric fabric(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoPuf(tech(), cfg, fabric.child("chip", 0)));
  }
}
BENCHMARK(BM_ChipConstruction)->Arg(64)->Arg(256);

void BM_ChipEvaluate(benchmark::State& state) {
  const RoPuf chip(tech(), PufConfig::aro(static_cast<int>(state.range(0))),
                   RngFabric(7).child("chip", 0));
  const auto op = chip.nominal_op();
  std::uint64_t eval = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chip.evaluate(op, eval++));
  }
}
BENCHMARK(BM_ChipEvaluate)->Arg(64)->Arg(256);

void BM_ChipAgeOneYear(benchmark::State& state) {
  RoPuf chip(tech(), PufConfig::conventional(256), RngFabric(9).child("chip", 0));
  for (auto _ : state) {
    chip.age_years(1.0);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ChipAgeOneYear);

void BM_BchEncode(benchmark::State& state) {
  const BchCode code(8, static_cast<int>(state.range(0)));
  Xoshiro256 rng(3);
  BitVector msg(code.k());
  for (std::size_t i = 0; i < msg.size(); ++i) msg.set(i, rng.bernoulli(0.5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(msg));
  }
}
BENCHMARK(BM_BchEncode)->Arg(4)->Arg(18);

void BM_BchDecode(benchmark::State& state) {
  const BchCode code(8, static_cast<int>(state.range(0)));
  Xoshiro256 rng(4);
  BitVector msg(code.k());
  for (std::size_t i = 0; i < msg.size(); ++i) msg.set(i, rng.bernoulli(0.5));
  BitVector noisy = code.encode(msg);
  for (int e = 0; e < static_cast<int>(state.range(0)); ++e) {
    noisy.flip(static_cast<std::size_t>(rng.bounded(noisy.size())));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(noisy));
  }
}
BENCHMARK(BM_BchDecode)->Arg(4)->Arg(18);

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024);
  Xoshiro256 rng(5);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.bounded(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

/// One threshold verification against a state.range(0)-device binary store:
/// binary-search lookup, HMAC binding-tag check, packed Hamming distance.
/// This is the auth service's hot path (tools/aropuf_auth drives it at fleet
/// scale); the gated 4096-device row keeps its cost pinned in CI.
void BM_AuthVerify(benchmark::State& state) {
  FleetConfig fleet;
  fleet.devices = static_cast<std::uint64_t>(state.range(0));
  fleet.seed = 17;
  std::vector<std::pair<DeviceId, EnrollmentRecord>> records;
  const Authenticator::VerifierKey key = fleet_verifier_key(fleet.seed);
  for (std::uint64_t i = 0; i < fleet.devices; ++i) {
    EnrollmentRecord record;
    record.response = fleet_enrollment_response(fleet, i);
    const std::vector<std::uint8_t> packed = record.response.to_bytes();
    record.tag = record_binding_tag(key, fleet_device_id(fleet, i), fleet.response_bits, 0,
                                    packed.data(), nullptr);
    records.push_back({fleet_device_id(fleet, i), std::move(record)});
  }
  std::shared_ptr<BinaryEnrollmentStore> store = BinaryEnrollmentStore::parse(
      encode_enrollment_store(fleet_store_params(fleet), std::move(records)));
  const Authenticator auth(AuthPolicy::for_false_accept_rate(fleet.response_bits, 1e-6),
                           store, key);
  // Pre-generate the request mix so the loop times verify() alone, not the
  // synthetic response model.
  Xoshiro256 pick(3);
  std::vector<std::pair<DeviceId, BitVector>> requests;
  for (int r = 0; r < 256; ++r) {
    const std::uint64_t index = pick.bounded(fleet.devices);
    requests.push_back({fleet_device_id(fleet, index), fleet_field_response(fleet, index, 1, 0.0)});
  }
  std::uint64_t accepted = 0;
  std::size_t next = 0;
  for (auto _ : state) {
    const auto& [id, claim] = requests[next];
    next = (next + 1) % requests.size();
    const auto result = auth.verify(id, claim);
    accepted += result && result->accepted ? 1 : 0;
    benchmark::DoNotOptimize(accepted);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AuthVerify)->Arg(4096);

/// Per-thread-count state.range(0) run of the E2 engine at 200 chips and a
/// 10-year checkpoint: the speedup benchmark the ISSUE/ROADMAP track.  The
/// result is bit-identical at every thread count (see parallel.hpp), so the
/// rows differ only in wall-clock time.
void BM_AgingSeries200(benchmark::State& state) {
  const int previous_threads = aropuf::ParallelExecutor::global().thread_count();
  aropuf::ParallelExecutor::set_global_thread_count(static_cast<int>(state.range(0)));
  PopulationConfig pop;
  pop.tech = tech();
  pop.chips = 200;
  pop.seed = 2014;
  const double checkpoints[] = {10.0};
  const telemetry::CounterReader counters;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_aging_series(pop, PufConfig::aro(), checkpoints));
  }
  attach_hw_counters(state, counters);
  aropuf::ParallelExecutor::set_global_thread_count(previous_threads);
}
BENCHMARK(BM_AgingSeries200)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

/// Single-thread E2 run per delay backend: the end-to-end record behind the
/// README speedup table (reference = the pre-kernel per-RO path).
void BM_AgingSeriesBackend(benchmark::State& state, DelayBackend backend) {
  if (backend == DelayBackend::kSimd && !simd_available()) {
    state.SkipWithError("AVX2 kernel not available in this build/CPU");
    return;
  }
  const int previous_threads = aropuf::ParallelExecutor::global().thread_count();
  aropuf::ParallelExecutor::set_global_thread_count(1);
  const DelayBackend previous = delay_backend();
  set_delay_backend(backend);
  PopulationConfig pop;
  pop.tech = tech();
  pop.chips = 200;
  pop.seed = 2014;
  const double checkpoints[] = {10.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_aging_series(pop, PufConfig::aro(), checkpoints));
  }
  set_delay_backend(previous);
  aropuf::ParallelExecutor::set_global_thread_count(previous_threads);
}
BENCHMARK_CAPTURE(BM_AgingSeriesBackend, reference, DelayBackend::kReference)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AgingSeriesBackend, batched, DelayBackend::kBatched)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AgingSeriesBackend, simd, DelayBackend::kSimd)
    ->Unit(benchmark::kMillisecond);

void BM_MakePopulation(benchmark::State& state) {
  const PufConfig cfg = PufConfig::aro();
  const RngFabric fabric(2014);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_population(tech(), cfg, static_cast<int>(state.range(0)), fabric));
  }
}
BENCHMARK(BM_MakePopulation)->Arg(40)->Arg(200)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_UniquenessPopulation(benchmark::State& state) {
  Xoshiro256 rng(6);
  std::vector<BitVector> responses;
  for (int c = 0; c < static_cast<int>(state.range(0)); ++c) {
    BitVector r(128);
    for (std::size_t i = 0; i < r.size(); ++i) r.set(i, rng.bernoulli(0.5));
    responses.push_back(std::move(r));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_uniqueness(responses));
  }
}
BENCHMARK(BM_UniquenessPopulation)->Arg(20)->Arg(100);

// --- shard-manifest fold throughput: JSON vs binary transport ---------------
//
// One synthetic shard (Arg chips, 10 sample series — the shape of a real
// study manifest at Arg/40 times the default population) written once per
// format, then repeatedly loaded and folded through AggregateBuilder.  The
// pair is gated as a *speedup*: bench/baseline.json requires binary to fold
// at least 5x the chips/sec of JSON (see scripts/perf_gate.py "speedups").

constexpr std::size_t kFoldBenchSeries = 10;

std::string fold_bench_path(bool binary, std::size_t chips) {
  namespace fs = std::filesystem;
  static std::map<std::pair<bool, std::size_t>, std::string> cache;
  auto [it, fresh] = cache.try_emplace({binary, chips});
  if (!fresh) return it->second;
  const bench::SyntheticShard shard = bench::make_synthetic_shard(chips, kFoldBenchSeries);
  const fs::path dir = fs::temp_directory_path() / "aropuf-fold-bench";
  fs::create_directories(dir);
  const fs::path path =
      dir / ("shard-" + std::to_string(chips) + (binary ? ".manifest.bin" : ".manifest.json"));
  if (binary) {
    if (!telemetry::write_binary_shard_manifest(path.string(), shard.metadata, shard.series)) {
      throw std::runtime_error("fold bench: cannot write " + path.string());
    }
  } else {
    std::ofstream out(path, std::ios::trunc);
    out << bench::to_json_transport(shard).dump(2) << '\n';
    if (!out) throw std::runtime_error("fold bench: cannot write " + path.string());
  }
  it->second = path.string();
  return it->second;
}

void fold_bench(benchmark::State& state, bool binary) {
  const std::size_t chips = static_cast<std::size_t>(state.range(0));
  const std::string path = fold_bench_path(binary, chips);
  for (auto _ : state) {
    telemetry::AggregateBuilder builder(telemetry::RawSeriesPolicy::kDropAfterCheck);
    builder.add(telemetry::load_shard_input(path));
    benchmark::DoNotOptimize(builder.finalize());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * chips));
  state.counters["chips_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * chips),
                         benchmark::Counter::kIsRate);
}

void BM_FoldShardJson(benchmark::State& state) { fold_bench(state, /*binary=*/false); }
void BM_FoldShardBinary(benchmark::State& state) { fold_bench(state, /*binary=*/true); }
BENCHMARK(BM_FoldShardJson)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FoldShardBinary)->Arg(4000)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main (instead of benchmark_main) so bench_micro accepts the same
// --threads knob as the experiment binaries; the flag is consumed before
// google-benchmark parses the rest.
int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      value = arg + 10;
    } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      value = argv[++i];
    }
    if (value != nullptr) {
      const int threads = std::atoi(value);
      if (threads >= 1) aropuf::ParallelExecutor::set_global_thread_count(threads);
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  // AROPUF_PROF=on puts the whole bench under the profiling layer (whole-run
  // counters + resource sampler) — the profiling-smoke CI leg measures the
  // on-vs-off overhead of exactly this configuration via perf_gate overhead.
  aropuf::telemetry::start_process_profile();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return aropuf::telemetry::stop_process_profile() ? 0 : 1;
}
