// E10 (extension) — stability screening (dark-bit masking) vs aging.
//
// Screening masks the measurement-noise/environmental error floor at
// enrollment; it cannot predict stochastic aging.  This bench quantifies
// both halves: masked vs unmasked BER at year 0 (noise only) and year 10
// (aging dominated), for both designs — and the resulting ECC area.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "ecc/code_search.hpp"

int main(int argc, char** argv) {
  aropuf::bench::parse_args(argc, argv);
  using namespace aropuf;
  bench::banner("E10: stability screening (dark-bit masking)",
                "extension — masked vs unmasked BER and ECC impact");

  PopulationConfig pop = bench::standard_population();
  pop.chips = 25;  // screening is 16 reads per chip; keep the bench snappy

  Table table("screening with 3 reads at 5 corners (nominal, hot, cold, low/high VDD)");
  table.set_header({"design", "years", "stable bits %", "unmasked BER %", "masked BER %"});
  for (const auto& cfg : {PufConfig::conventional(), PufConfig::aro()}) {
    for (const double years : {0.0, 10.0}) {
      const auto r = run_masking_study(pop, cfg, /*full_corners=*/true, /*repeats=*/3, years);
      table.add_row({cfg.label, Table::num(years, 0), Table::num(r.stable_fraction * 100.0, 1),
                     Table::num(r.unmasked_ber * 100.0, 2), Table::num(r.masked_ber * 100.0, 2)});
    }
  }
  table.print(std::cout);

  // ECC impact: rerun the E7-style search at the masked ARO error rate.
  const auto masked = run_masking_study(pop, PufConfig::aro(), true, 3, 10.0);
  const CodeSearchConstraints constraints;
  const auto plain = find_min_area_scheme(pop.tech, masked.unmasked_ber * 1.4, constraints);
  const auto with_mask = find_min_area_scheme(pop.tech, masked.masked_ber * 1.4, constraints);
  if (plain.has_value() && with_mask.has_value()) {
    std::cout << "\nECC area for the ARO design (BER + 40% provisioning margin):\n"
              << "  without masking: " << Table::num(plain->area.total_ge() / 1000.0, 1)
              << " kGE (rep-" << plain->scheme.repetition << ", t=" << plain->scheme.bch_t
              << ")\n"
              << "  with masking:    " << Table::num(with_mask->area.total_ge() / 1000.0, 1)
              << " kGE (rep-" << with_mask->scheme.repetition
              << ", t=" << with_mask->scheme.bch_t << ")\n";
  }

  std::cout << "\nshape check: masking erases the year-0 noise floor and trims the\n"
               "aged BER (marginal pairs are both noisy and aging-fragile), but the\n"
               "bulk of the 10-year conventional damage is unscreenable stochastic\n"
               "aging — gating, not masking, is the aging fix.\n";
  return bench::finish("e10_masking");
}
