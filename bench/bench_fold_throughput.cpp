// Fold-throughput experiment: how fast do shard manifests stream into
// AggregateBuilder under each transport, and what does it cost in memory?
//
// Synthesizes a sharded study at --chips (default 4000 = 100x the 40-chip
// default study) split over --shards shard manifests, writes the identical
// payload in both transports, then times a full streaming merge of each and
// reports chips/sec plus the process peak RSS (getrusage ru_maxrss).  The
// binary transport's headline ratio is recorded in EXPERIMENTS.md and gated
// in CI via the BM_FoldShard* pair in bench_micro + bench/baseline.json.
//
// Usage: bench_fold_throughput [--chips N] [--shards S] [--series K]
//                              [--repeat R] [--keep-raw]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fold_bench_util.hpp"
#include "telemetry/aggregate.hpp"
#include "telemetry/prof.hpp"

namespace {

using namespace aropuf;
namespace fs = std::filesystem;

// Peak RSS comes from the profiling layer's shared helper, which
// normalizes the Linux-KiB vs macOS-bytes ru_maxrss discrepancy.
using telemetry::peak_rss_kib;

/// Splits the synthetic whole-population shard into `shards` contiguous
/// slices and writes each as its own manifest in the requested transport.
std::vector<std::string> write_shards(const bench::SyntheticShard& whole, std::size_t chips,
                                      std::size_t shards, bool binary, const fs::path& dir) {
  std::vector<std::string> paths;
  for (std::size_t k = 0; k < shards; ++k) {
    const std::size_t lo = chips * k / shards;
    const std::size_t hi = chips * (k + 1) / shards;
    bench::SyntheticShard slice;
    slice.metadata = whole.metadata;
    JsonValue::Object& shard_desc = slice.metadata.as_object().at("shard").as_object();
    shard_desc["index"] = JsonValue(static_cast<std::uint64_t>(k));
    shard_desc["count"] = JsonValue(static_cast<std::uint64_t>(shards));
    shard_desc["chip_lo"] = JsonValue(static_cast<std::uint64_t>(lo));
    shard_desc["chip_hi"] = JsonValue(static_cast<std::uint64_t>(hi));
    slice.metadata.as_object().at("metrics").as_object()["shard"] =
        JsonValue(static_cast<std::uint64_t>(k));
    JsonValue::Object& samples =
        slice.metadata.as_object().at("results").as_object().at("samples").as_object();
    for (const telemetry::BinarySeries& s : whole.series) {
      telemetry::BinarySeries cut;
      cut.name = s.name;
      cut.offset = lo;
      cut.total = s.total;
      cut.hist_lo = s.hist_lo;
      cut.hist_hi = s.hist_hi;
      cut.hist_bins = s.hist_bins;
      cut.values.assign(s.values.begin() + static_cast<std::ptrdiff_t>(lo),
                        s.values.begin() + static_cast<std::ptrdiff_t>(hi));
      samples.at(cut.name).as_object()["offset"] = JsonValue(static_cast<std::uint64_t>(lo));
      slice.series.push_back(std::move(cut));
    }
    const fs::path path = dir / ("shard-" + std::to_string(k) +
                                 (binary ? ".manifest.bin" : ".manifest.json"));
    if (binary) {
      if (!telemetry::write_binary_shard_manifest(path.string(), slice.metadata, slice.series)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
      }
    } else {
      std::ofstream out(path, std::ios::trunc);
      out << bench::to_json_transport(slice).dump(2) << '\n';
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
      }
    }
    paths.push_back(path.string());
  }
  return paths;
}

struct FoldRun {
  double best_seconds = 0.0;
  std::uint64_t bytes_on_disk = 0;
};

FoldRun fold_all(const std::vector<std::string>& paths, telemetry::RawSeriesPolicy policy,
                 int repeat) {
  FoldRun run;
  for (const std::string& p : paths) run.bytes_on_disk += fs::file_size(p);
  run.best_seconds = 1e300;
  for (int r = 0; r < repeat; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    telemetry::AggregateBuilder builder(policy);
    for (const std::string& p : paths) builder.add(telemetry::load_shard_input(p));
    const telemetry::AggregateResult result = builder.finalize();
    const double dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    run.best_seconds = std::min(run.best_seconds, dt);
    if (!result.conflicts.empty()) {
      std::fprintf(stderr, "unexpected provenance conflicts in synthetic shards\n");
      std::exit(1);
    }
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t chips = 4000;
  std::size_t shards = 8;
  std::size_t series = 10;
  int repeat = 3;
  bool keep_raw = false;
  for (int i = 1; i < argc; ++i) {
    const auto num = [&](const char* flag) -> long {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return std::atol(argv[++i]);
      return -1;
    };
    if (long v = num("--chips"); v > 0) chips = static_cast<std::size_t>(v);
    else if (long v2 = num("--shards"); v2 > 0) shards = static_cast<std::size_t>(v2);
    else if (long v3 = num("--series"); v3 > 0) series = static_cast<std::size_t>(v3);
    else if (long v4 = num("--repeat"); v4 > 0) repeat = static_cast<int>(v4);
    else if (std::strcmp(argv[i], "--keep-raw") == 0) keep_raw = true;
    else {
      std::fprintf(stderr,
                   "usage: %s [--chips N] [--shards S] [--series K] [--repeat R] [--keep-raw]\n",
                   argv[0]);
      return 2;
    }
  }

  const fs::path dir = fs::temp_directory_path() / "aropuf-fold-throughput";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const bench::SyntheticShard whole = bench::make_synthetic_shard(chips, series);
  const auto json_paths = write_shards(whole, chips, shards, /*binary=*/false, dir);
  const auto bin_paths = write_shards(whole, chips, shards, /*binary=*/true, dir);
  const telemetry::RawSeriesPolicy policy =
      keep_raw ? telemetry::RawSeriesPolicy::kKeep : telemetry::RawSeriesPolicy::kDropAfterCheck;

  std::printf("fold throughput: %zu chips x %zu series over %zu shards (best of %d, policy %s)\n",
              chips, series, shards, repeat, keep_raw ? "keep" : "drop_after_check");
  const long rss_before = peak_rss_kib();
  const FoldRun json_run = fold_all(json_paths, policy, repeat);
  const long rss_after_json = peak_rss_kib();
  const FoldRun bin_run = fold_all(bin_paths, policy, repeat);
  const long rss_after_bin = peak_rss_kib();

  const double json_cps = static_cast<double>(chips) / json_run.best_seconds;
  const double bin_cps = static_cast<double>(chips) / bin_run.best_seconds;
  std::printf("  %-8s %12s %14s %14s %12s\n", "format", "bytes", "merge (ms)", "chips/sec",
              "peakRSS KiB");
  std::printf("  %-8s %12llu %14.2f %14.0f %12ld\n", "json",
              static_cast<unsigned long long>(json_run.bytes_on_disk),
              json_run.best_seconds * 1e3, json_cps, rss_after_json);
  std::printf("  %-8s %12llu %14.2f %14.0f %12ld\n", "binary",
              static_cast<unsigned long long>(bin_run.bytes_on_disk),
              bin_run.best_seconds * 1e3, bin_cps, rss_after_bin);
  std::printf("  binary/json speedup: %.2fx   size ratio: %.2fx   baseline RSS %ld KiB\n",
              bin_cps / json_cps,
              static_cast<double>(json_run.bytes_on_disk) /
                  static_cast<double>(bin_run.bytes_on_disk),
              rss_before);
  fs::remove_all(dir);
  return 0;
}
