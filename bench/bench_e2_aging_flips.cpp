// E2 — response bits flipped vs years of aging (the paper's headline).
//
// Paper: "Only 7.7% bits get flipped on average over 10 years operation
// period for an ARO-PUF due to aging where the value is 32% for a
// conventional RO-PUF."
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "sim/csv.hpp"

int main(int argc, char** argv) {
  aropuf::bench::parse_args(argc, argv);
  using namespace aropuf;
  bench::banner("E2: bits flipped vs years of aging (headline)",
                "Fig./Table — % flipped response bits after 1..10 years");

  const PopulationConfig pop = bench::standard_population();
  const double checkpoints[] = {1.0, 2.0, 4.0, 6.0, 8.0, 10.0};

  const auto conv = run_aging_series(pop, PufConfig::conventional(), checkpoints);
  const auto aro = run_aging_series(pop, PufConfig::aro(), checkpoints);

  Table table("bits flipped vs enrollment (%)");
  table.set_header({"years", "conventional mean", "conventional worst chip", "ARO mean",
                    "ARO worst chip"});
  auto csv = CsvWriter::for_bench("e2_aging_flips");
  if (csv.has_value()) {
    csv->write_row({"years", "conv_mean", "conv_worst", "aro_mean", "aro_worst"});
  }
  for (std::size_t i = 0; i < conv.years.size(); ++i) {
    table.add_row({Table::num(conv.years[i], 0), Table::num(conv.mean_flip_percent[i], 2),
                   Table::num(conv.max_flip_percent[i], 2), Table::num(aro.mean_flip_percent[i], 2),
                   Table::num(aro.max_flip_percent[i], 2)});
    if (csv.has_value()) {
      csv->write_row({Table::num(conv.years[i], 1), Table::num(conv.mean_flip_percent[i], 4),
                      Table::num(conv.max_flip_percent[i], 4),
                      Table::num(aro.mean_flip_percent[i], 4),
                      Table::num(aro.max_flip_percent[i], 4)});
    }
  }
  table.print(std::cout);

  std::cout << "\npaper:    conventional 32.0%   ARO 7.7%   (10 years)\n";
  std::cout << "measured: conventional " << Table::num(conv.mean_flip_percent.back(), 1)
            << "%   ARO " << Table::num(aro.mean_flip_percent.back(), 1) << "%\n";
  return bench::finish("e2_aging_flips", &csv);
}
