// E13 (extension) — reliability-enhancement techniques vs the ARO design.
//
// Three classic levers the paper's related work discusses, measured on the
// same simulated silicon and composed with the ARO design:
//   1. max-margin pair selection (k candidate ROs per bit, helper-data pick)
//   2. authentication lifetime under a fixed FAR threshold, with and
//      without margin-triggered re-enrollment
// Each lever trades area or infrastructure for error rate; gating remains
// the only lever that attacks aging itself.
#include <iostream>

#include "auth/authenticator.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "puf/pair_selection.hpp"
#include "puf/ro_puf.hpp"

namespace {

using namespace aropuf;

void pair_selection_study(const PopulationConfig& pop) {
  Table table("max-margin pair selection: 10-year flips vs group size (ROs per bit)");
  table.set_header({"design", "group k", "ROs per bit", "bits", "flips@10y mean %"});
  for (const auto& base : {PufConfig::conventional(), PufConfig::aro()}) {
    for (const int k : {2, 4, 8}) {
      const RngFabric fabric(pop.seed);
      RunningStats flips;
      for (int c = 0; c < 12; ++c) {
        RoPuf chip(pop.tech, base, fabric.child("chip", static_cast<std::uint64_t>(c)));
        const auto op = chip.nominal_op();
        Xoshiro256 rng(fabric.derive("sel-noise", static_cast<std::uint64_t>(c)));
        const auto sel = select_max_margin_pairs(chip, k, op, rng);
        const BitVector golden = evaluate_with_pairs(chip, sel, op, rng);
        chip.age_years(10.0);
        const BitVector aged = evaluate_with_pairs(chip, sel, op, rng);
        flips.add(fractional_hamming_distance(golden, aged) * 100.0);
      }
      table.add_row({base.label, std::to_string(k), std::to_string(k),
                     std::to_string(static_cast<std::size_t>(base.num_ros / k)),
                     Table::num(flips.mean(), 2)});
    }
  }
  table.print(std::cout);
}

void authentication_study(const PopulationConfig& pop) {
  const AuthPolicy policy = AuthPolicy::for_false_accept_rate(128, 1e-6);
  Table table("authentication lifetime @ FAR <= 1e-6 (threshold " +
              Table::num(policy.accept_threshold * 100.0, 1) + "% HD), 12 chips/design");
  table.set_header({"design", "policy", "year 2", "year 4", "year 6", "year 8", "year 10"});

  for (const auto& cfg : {PufConfig::conventional(), PufConfig::aro()}) {
    for (const bool refresh : {false, true}) {
      const RngFabric fabric(pop.seed);
      std::vector<RoPuf> chips;
      Authenticator auth(policy);
      for (int c = 0; c < 12; ++c) {
        chips.emplace_back(pop.tech, cfg, fabric.child("chip", static_cast<std::uint64_t>(c)));
        auth.enroll(static_cast<DeviceId>(c),
                    chips.back().evaluate(chips.back().nominal_op(), 0));
      }
      std::vector<std::string> row{cfg.label, refresh ? "margin-refresh" : "fixed enrollment"};
      for (int year = 2; year <= 10; year += 2) {
        int ok = 0;
        for (std::size_t c = 0; c < chips.size(); ++c) {
          chips[c].age_years(2.0);
          const auto id = static_cast<DeviceId>(c);
          const BitVector reading =
              chips[c].evaluate(chips[c].nominal_op(), static_cast<std::uint64_t>(year));
          const auto result = auth.verify(id, reading);
          if (result.has_value() && result->accepted) {
            ++ok;
            // Margin-triggered re-enrollment: refresh the stored response
            // while the device still authenticates comfortably.
            if (refresh && auth.needs_refresh(*result, 0.10)) auth.enroll(id, reading);
          }
        }
        row.push_back(std::to_string(ok) + "/12");
      }
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  aropuf::bench::parse_args(argc, argv);
  bench::banner("E13: reliability enhancements (pair selection, auth refresh)",
                "extension — composition with the ARO design");
  const PopulationConfig pop = bench::standard_population();
  pair_selection_study(pop);
  authentication_study(pop);
  std::cout << "\nshape check: selection widens margins (helps both designs, costs\n"
               "k/2x ROs per bit); refresh keeps even drifting devices authenticating\n"
               "as long as drift per period stays inside the threshold.  Neither\n"
               "substitutes for gating when helper updates are impossible (e.g. OTP\n"
               "helper storage) — the ARO design's case.\n";
  return bench::finish("e13_enhancements");
}
