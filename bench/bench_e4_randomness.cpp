// E4 — randomness and uniformity of responses.
//
// The paper's randomness claim ("unique, random ... keys"): uniformity
// (% ones per chip), bit-aliasing (per-position bias across chips), and a
// NIST SP 800-22-lite battery over the concatenated population responses.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "metrics/entropy.hpp"
#include "metrics/nist.hpp"
#include "puf/ro_puf.hpp"

namespace {

aropuf::BitVector concatenated_responses(const aropuf::PopulationConfig& pop,
                                         const aropuf::PufConfig& cfg) {
  using namespace aropuf;
  const RngFabric fabric(pop.seed);
  const auto chips = make_population(pop.tech, cfg, pop.chips, fabric);
  BitVector all;
  for (const auto& chip : chips) {
    all = all.concat(chip.evaluate(chip.nominal_op(), 0));
  }
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  aropuf::bench::parse_args(argc, argv);
  using namespace aropuf;
  bench::banner("E4: randomness / uniformity",
                "Table — uniformity, bit-aliasing, NIST-lite battery");

  const PopulationConfig pop = bench::standard_population();
  const auto conv = run_uniqueness(pop, PufConfig::conventional());
  const auto aro = run_uniqueness(pop, PufConfig::aro());

  Table table("uniformity and bit-aliasing");
  table.set_header({"design", "uniformity mean %", "uniformity std %", "aliasing std %",
                    "aliasing worst |bias| %"});
  for (const auto* r : {&conv, &aro}) {
    const double worst =
        std::max(std::abs(r->aliasing.min() - 0.5), std::abs(r->aliasing.max() - 0.5));
    table.add_row({r->label, Table::num(r->uniformity.mean() * 100.0, 2),
                   Table::num(r->uniformity.stddev() * 100.0, 2),
                   Table::num(r->aliasing.stddev() * 100.0, 2), Table::num(worst * 100.0, 2)});
  }
  table.print(std::cout);

  // Min-entropy budget (SP 800-90B-lite): what a fuzzy extractor may safely
  // count on per response bit.
  {
    Table entropy("min-entropy estimators (per response bit)");
    entropy.set_header({"design", "MCV", "collision (conservative x2)", "Markov",
                        "combined (min)"});
    for (const auto& design : {PufConfig::conventional(), PufConfig::aro()}) {
      const RngFabric fabric(pop.seed);
      const auto chips = make_population(pop.tech, design, pop.chips, fabric);
      std::vector<BitVector> responses;
      for (const auto& chip : chips) responses.push_back(chip.evaluate(chip.nominal_op(), 0));
      entropy.add_row({design.label, Table::num(mcv_min_entropy(responses), 3),
                       Table::num(collision_min_entropy(responses), 3),
                       Table::num(markov_min_entropy(responses), 3),
                       Table::num(min_entropy_estimate(responses), 3)});
    }
    entropy.print(std::cout);
  }

  // NIST prescribes judging a generator over many sequences, not one: run
  // the battery on several independently-seeded populations and report the
  // pass fraction per test (alpha = 0.01, so ~1 failure in 100 sequences is
  // expected even from ideal randomness).
  constexpr int kPopulations = 8;
  for (const auto& design : {PufConfig::conventional(), PufConfig::aro()}) {
    std::vector<int> passes(8, 0);
    std::vector<double> min_p(8, 1.0);
    std::vector<std::string> names;
    for (int s = 0; s < kPopulations; ++s) {
      PopulationConfig p = pop;
      p.seed = pop.seed + static_cast<std::uint64_t>(s);
      const BitVector bits = concatenated_responses(p, design);
      const auto results = nist_battery(bits);
      if (names.empty()) {
        for (const auto& r : results) names.push_back(r.name);
      }
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].pass()) ++passes[i];
        min_p[i] = std::min(min_p[i], results[i].p_value);
      }
    }
    Table nist("NIST-lite battery: " + design.label + " (" + std::to_string(kPopulations) +
               " populations x 5120 bits, alpha = 0.01)");
    nist.set_header({"test", "populations passing", "min p-value"});
    for (std::size_t i = 0; i < names.size(); ++i) {
      nist.add_row({names[i], std::to_string(passes[i]) + "/" + std::to_string(kPopulations),
                    Table::num(min_p[i], 4)});
    }
    nist.print(std::cout);
  }

  std::cout << "\nshape check: ARO passes the battery across populations (adjacent\n"
               "pairing cancels layout systematics); conventional fails the frequency\n"
               "family on every population, matching its <50% inter-chip HD.\n";
  return bench::finish("e4_randomness");
}
