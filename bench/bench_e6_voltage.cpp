// E6 — reliability vs supply voltage.
//
// Golden at nominal VDD; +/-10 % supply excursions change each pair's margin
// through the alpha-power nonlinearity (frequency sensitivity to Vth depends
// on VDD), flipping marginal bits.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "sim/csv.hpp"

int main(int argc, char** argv) {
  aropuf::bench::parse_args(argc, argv);
  using namespace aropuf;
  bench::banner("E6: reliability vs supply voltage",
                "Fig. — bit errors vs VDD (golden @ nominal)");

  const PopulationConfig pop = bench::standard_population();
  const double nominal = pop.tech.vdd_nominal;
  const double vdd[] = {nominal * 0.90, nominal * 0.95, nominal,
                        nominal * 1.05, nominal * 1.10};

  const auto conv = run_voltage_sweep(pop, PufConfig::conventional(), vdd);
  const auto aro = run_voltage_sweep(pop, PufConfig::aro(), vdd);

  Table table("bit error rate vs supply voltage (%)");
  table.set_header({"VDD (V)", "conventional mean", "conventional worst", "ARO mean",
                    "ARO worst"});
  auto csv = CsvWriter::for_bench("e6_voltage");
  if (csv.has_value()) {
    csv->write_row({"vdd_v", "conv_mean", "conv_worst", "aro_mean", "aro_worst"});
  }
  for (std::size_t i = 0; i < conv.size(); ++i) {
    table.add_row({Table::num(conv[i].value, 3), Table::num(conv[i].mean_ber_percent, 2),
                   Table::num(conv[i].max_ber_percent, 2), Table::num(aro[i].mean_ber_percent, 2),
                   Table::num(aro[i].max_ber_percent, 2)});
    if (csv.has_value()) {
      csv->write_row({Table::num(conv[i].value, 3), Table::num(conv[i].mean_ber_percent, 4),
                      Table::num(conv[i].max_ber_percent, 4),
                      Table::num(aro[i].mean_ber_percent, 4),
                      Table::num(aro[i].max_ber_percent, 4)});
    }
  }
  table.print(std::cout);

  std::cout << "\nshape check: errors grow away from the enrollment VDD and stay well\n"
               "below the temperature-induced errors of E5 (supply sensitivity of a\n"
               "ratioed comparison is second-order).\n";
  return bench::finish("e6_voltage", &csv);
}
