// E5 — reliability vs temperature.
//
// Golden responses are enrolled at the 25 C nominal corner; re-evaluation at
// other temperatures flips bits through per-device Vth-tempco mismatch.
// The paper's figure shows errors growing toward both temperature extremes.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "sim/csv.hpp"

int main(int argc, char** argv) {
  aropuf::bench::parse_args(argc, argv);
  using namespace aropuf;
  bench::banner("E5: reliability vs temperature",
                "Fig. — bit errors vs temperature (golden @ 25 C)");

  const PopulationConfig pop = bench::standard_population();
  const double temps[] = {-40.0, -20.0, 0.0, 25.0, 55.0, 85.0, 105.0, 125.0};

  const auto conv = run_temperature_sweep(pop, PufConfig::conventional(), temps);
  const auto aro = run_temperature_sweep(pop, PufConfig::aro(), temps);

  Table table("bit error rate vs temperature (%)");
  table.set_header({"temp C", "conventional mean", "conventional worst", "ARO mean",
                    "ARO worst"});
  auto csv = CsvWriter::for_bench("e5_temperature");
  if (csv.has_value()) {
    csv->write_row({"temp_c", "conv_mean", "conv_worst", "aro_mean", "aro_worst"});
  }
  for (std::size_t i = 0; i < conv.size(); ++i) {
    table.add_row({Table::num(conv[i].value, 0), Table::num(conv[i].mean_ber_percent, 2),
                   Table::num(conv[i].max_ber_percent, 2), Table::num(aro[i].mean_ber_percent, 2),
                   Table::num(aro[i].max_ber_percent, 2)});
    if (csv.has_value()) {
      csv->write_row({Table::num(conv[i].value, 1), Table::num(conv[i].mean_ber_percent, 4),
                      Table::num(conv[i].max_ber_percent, 4),
                      Table::num(aro[i].mean_ber_percent, 4),
                      Table::num(aro[i].max_ber_percent, 4)});
    }
  }
  table.print(std::cout);

  std::cout << "\nshape check: V-shaped around the 25 C enrollment corner; both designs\n"
               "share the mechanism (tempco mismatch is not an aging effect), with the\n"
               "worst case at the 125 C extreme.\n";
  return bench::finish("e5_temperature", &csv);
}
