// E11 (extension) — sort-order modeling attack on challenge-response usage.
//
// Why the ARO-PUF (like all RO-PUFs) is a key-generation PUF, not a strong
// PUF: response bits are frequency comparisons, so observed CRPs induce a
// partial order whose transitive closure predicts unseen challenges.  This
// bench reproduces the learnability curve on a simulated 256-RO chip.
#include <iostream>

#include "attack/order_attack.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "puf/ro_puf.hpp"

int main(int argc, char** argv) {
  aropuf::bench::parse_args(argc, argv);
  using namespace aropuf;
  bench::banner("E11: sort-order modeling attack",
                "extension — CRP learnability of RO comparisons");

  const TechnologyParams tech = TechnologyParams::cmos90();
  PufConfig cfg = PufConfig::aro(256);
  cfg.pairing = PairingStrategy::kRandomChallenge;
  const RoPuf chip(tech, cfg, RngFabric(2014).child("chip", 0));
  const OperatingPoint op = chip.nominal_op();
  const FrequencyCounter counter(tech, cfg.measurement_window);
  const int n = cfg.num_ros;

  OrderAttack attack(n);
  Xoshiro256 challenge_rng(77);

  Table table("attack on a 256-RO chip (noisy measured CRPs)");
  table.set_header({"observed CRPs", "pairs determined %", "prediction accuracy %"});

  auto evaluate_attack = [&]() {
    long predicted = 0;
    long correct = 0;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        const auto p = attack.predict(a, b);
        if (!p.has_value()) continue;
        ++predicted;
        const bool truth = chip.oscillators()[static_cast<std::size_t>(a)].frequency(op) >
                           chip.oscillators()[static_cast<std::size_t>(b)].frequency(op);
        if (*p == truth) ++correct;
      }
    }
    return std::pair<long, long>(predicted, correct);
  };

  std::size_t next_report = 64;
  for (std::size_t crp = 1; crp <= 16384; ++crp) {
    const int a = static_cast<int>(challenge_rng.bounded(static_cast<std::uint64_t>(n)));
    int b = static_cast<int>(challenge_rng.bounded(static_cast<std::uint64_t>(n - 1)));
    if (b >= a) ++b;
    Xoshiro256 noise(challenge_rng());
    const auto ca = counter.measure(chip.oscillators()[static_cast<std::size_t>(a)], op, noise);
    const auto cb = counter.measure(chip.oscillators()[static_cast<std::size_t>(b)], op, noise);
    attack.observe(a, b, compare_counts(ca, cb));
    if (crp == next_report) {
      const auto [predicted, correct] = evaluate_attack();
      const double total_pairs = n * (n - 1) / 2.0;
      table.add_row({std::to_string(crp),
                     Table::num(100.0 * static_cast<double>(predicted) / total_pairs, 1),
                     predicted > 0
                         ? Table::num(100.0 * static_cast<double>(correct) /
                                          static_cast<double>(predicted),
                                      1)
                         : "n/a"});
      next_report *= 4;
    }
  }
  table.print(std::cout);

  std::cout << "\nshape check: a few thousand CRPs determine nearly the whole 32640-pair\n"
               "challenge space at >97% accuracy (errors trace to near-tie pairs whose\n"
               "noisy observations were discarded as contradictions).  RO-PUFs must be\n"
               "deployed for key generation with dedicated pairs — as the ARO-PUF is.\n";
  return bench::finish("e11_modeling_attack");
}
