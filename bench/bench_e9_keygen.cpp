// E9 (extension) — end-to-end key generation across the lifetime.
//
// Enroll a 128-bit key through the fuzzy extractor on fresh silicon, then
// attempt reconstruction every year for 10 years, for both designs, using
// the ECC scheme the E7 search selects for the ARO provisioning point.
// This turns the paper's analytical ECC table into a running system.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "keygen/fuzzy_extractor.hpp"
#include "puf/ro_puf.hpp"

int main(int argc, char** argv) {
  aropuf::bench::parse_args(argc, argv);
  using namespace aropuf;
  bench::banner("E9: end-to-end key reconstruction over the lifetime",
                "extension — fuzzy extractor success rate vs years");

  const PopulationConfig pop = bench::standard_population();

  // The ARO-sized scheme from the E7 search: rep-3 + BCH(127, 64, 10).
  ConcatenatedScheme scheme;
  scheme.repetition = 3;
  scheme.bch_m = 7;
  scheme.bch_t = 10;
  scheme.key_bits = 128;
  const FuzzyExtractor fx(scheme);
  const int ros = static_cast<int>(2 * fx.response_bits());
  constexpr int kChips = 12;

  Table table("key reconstruction success (ARO-sized ECC: rep-3 + BCH(127,64,10), " +
              std::to_string(kChips) + " chips/design)");
  table.set_header({"years", "conventional OK", "ARO OK"});

  struct Fleet {
    std::vector<RoPuf> chips;
    std::vector<Enrollment> enrollments;
  };
  auto build = [&](const PufConfig& base) {
    Fleet fleet;
    PufConfig cfg = base;
    cfg.num_ros = ros;
    const RngFabric fabric(pop.seed);
    fleet.chips = make_population(pop.tech, cfg, kChips, fabric);
    Xoshiro256 trng(4242);
    for (auto& chip : fleet.chips) {
      fleet.enrollments.push_back(fx.enroll(chip.evaluate(chip.nominal_op(), 0), trng));
    }
    return fleet;
  };

  Fleet conv = build(PufConfig::conventional());
  Fleet aro = build(PufConfig::aro());

  auto successes = [&](Fleet& fleet, std::uint64_t eval) {
    int ok = 0;
    for (std::size_t c = 0; c < fleet.chips.size(); ++c) {
      const auto key = fx.reconstruct(fleet.chips[c].evaluate(fleet.chips[c].nominal_op(), eval),
                                      fleet.enrollments[c].helper_data);
      if (key.has_value() && *key == fleet.enrollments[c].key) ++ok;
    }
    return ok;
  };

  for (int year = 0; year <= 10; year += 2) {
    if (year > 0) {
      for (auto& chip : conv.chips) chip.age_years(2.0);
      for (auto& chip : aro.chips) chip.age_years(2.0);
    }
    const auto eval = static_cast<std::uint64_t>(year + 1);
    table.add_row({std::to_string(year),
                   std::to_string(successes(conv, eval)) + "/" + std::to_string(kChips),
                   std::to_string(successes(aro, eval)) + "/" + std::to_string(kChips)});
  }
  table.print(std::cout);

  std::cout << "\nshape check: every ARO chip reconstructs its key at every age; the\n"
               "conventional fleet collapses within a few years at ARO-sized ECC —\n"
               "the concrete version of the paper's area argument (matching\n"
               "conventional reliability needs the ~24x larger macro of E7).\n";
  return bench::finish("e9_keygen");
}
