// Shared setup for the experiment benches: the standard Monte Carlo
// population used throughout EXPERIMENTS.md, command-line knobs for the
// parallel engine, and a banner helper.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "common/cli.hpp"
#include "sim/csv.hpp"
#include "sim/parallel.hpp"
#include "sim/scenarios.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/prof.hpp"

namespace aropuf::bench {

/// Knobs shared by every experiment binary.
struct Options {
  int threads = 0;  ///< 0 = AROPUF_THREADS / hardware default
  int chips = 0;    ///< 0 = the standard 40-chip population
};

inline Options& options() {
  static Options opts;
  return opts;
}

/// Parses --threads=N / --threads N (worker count for the Monte Carlo
/// engine) and --chips=N / --chips N (population size override, used by the
/// CI smoke run).  Unknown arguments are ignored so binaries stay drop-in.
/// Results are deterministic for a given population regardless of --threads.
inline void parse_args(int argc, char** argv) {
  cli::Parser parser(argc > 0 ? argv[0] : "bench",
                     "ARO-PUF experiment bench (see EXPERIMENTS.md)");
  parser
      .opt_int("--threads", &options().threads, "N",
               "Monte Carlo worker threads (default: AROPUF_THREADS or hardware)", 1)
      .opt_int("--chips", &options().chips, "N",
               "population size override (default: the standard 40-chip run)", 1)
      .allow_unknown()
      .with_env_help();
  switch (parser.parse(argc, argv)) {
    case cli::ParseStatus::kHelp:
      std::exit(0);
    case cli::ParseStatus::kError:
      std::exit(2);
    case cli::ParseStatus::kOk:
      break;
  }
  if (options().threads > 0) ParallelExecutor::set_global_thread_count(options().threads);
  // Env-driven (AROPUF_PROF / AROPUF_PROF_RESOURCE): whole-run hardware
  // counters + resource sampler; per-stage deltas land in the manifest and
  // the totals in its "profile" section.  No-op when profiling is off.
  telemetry::start_process_profile();
}

/// The reference population every E-bench uses (seed printed so results are
/// traceable; see DESIGN.md §5 for the calibration behind the constants).
/// --chips overrides the population size (the seed and per-chip streams are
/// unchanged, so chips 0..N-1 are the same dies at any size).
inline PopulationConfig standard_population() {
  PopulationConfig pop;
  pop.tech = TechnologyParams::cmos90();
  pop.chips = options().chips > 0 ? options().chips : 40;
  pop.seed = 2014;
  return pop;
}

/// End-of-run hook every bench main returns through: closes the CSV (if one
/// was open), writes the run manifest (AROPUF_MANIFEST path if set, else
/// next to the CSV in ARO_CSV_DIR), and flushes any active trace session.
/// Non-zero when any output artifact failed to land — a silent half-written
/// CSV must fail the job, not just print a table.
inline int finish(const char* run_name, std::optional<CsvWriter>* csv = nullptr) {
  bool ok = true;
  if (csv != nullptr && csv->has_value()) ok = (*csv)->close() && ok;
  const PopulationConfig pop = standard_population();
  JsonValue::Object config;
  config["chips"] = JsonValue(pop.chips);
  config["seed"] = JsonValue(pop.seed);
  config["technology"] = JsonValue(pop.tech.name);
  std::string fallback;
  if (const char* dir = cli::env_value("ARO_CSV_DIR")) {
    fallback = std::string(dir) + "/" + run_name + ".manifest.json";
  }
  // Freeze profile totals (and close the resource timeline) before the
  // manifest snapshots them; a failed timeline write fails the run like a
  // failed CSV does.
  ok = telemetry::stop_process_profile() && ok;
  ok = telemetry::finalize_run(run_name, JsonValue(std::move(config)), fallback) && ok;
  return ok ? 0 : 1;
}

inline void banner(const char* experiment, const char* paper_artifact) {
  const PopulationConfig pop = standard_population();
  std::printf("\n################################################################\n");
  std::printf("# %s\n", experiment);
  std::printf("# reproduces: %s\n", paper_artifact);
  std::printf("# technology %s, %d chips, master seed %llu, %d threads\n",
              pop.tech.name.c_str(), pop.chips,
              static_cast<unsigned long long>(pop.seed),
              ParallelExecutor::global().thread_count());
  std::printf("################################################################\n");
}

}  // namespace aropuf::bench
