// Shared setup for the experiment benches: the standard Monte Carlo
// population used throughout EXPERIMENTS.md, and a banner helper.
#pragma once

#include <cstdio>

#include "sim/scenarios.hpp"

namespace aropuf::bench {

/// The reference population every E-bench uses (seed printed so results are
/// traceable; see DESIGN.md §5 for the calibration behind the constants).
inline PopulationConfig standard_population() {
  PopulationConfig pop;
  pop.tech = TechnologyParams::cmos90();
  pop.chips = 40;
  pop.seed = 2014;
  return pop;
}

inline void banner(const char* experiment, const char* paper_artifact) {
  const PopulationConfig pop = standard_population();
  std::printf("\n################################################################\n");
  std::printf("# %s\n", experiment);
  std::printf("# reproduces: %s\n", paper_artifact);
  std::printf("# technology %s, %d chips, master seed %llu\n", pop.tech.name.c_str(),
              pop.chips, static_cast<unsigned long long>(pop.seed));
  std::printf("################################################################\n");
}

}  // namespace aropuf::bench
