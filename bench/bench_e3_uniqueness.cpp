// E3 — inter-chip Hamming distance (uniqueness).
//
// Paper: "The ARO-PUF shows an average interchip HD of 49.67% (close to
// ideal value 50%) and better than the conventional RO-PUF (~45%)."
//
// Mechanism reproduced: distant pairing picks up the die-independent layout
// systematics (IR-drop gradient + litho ripple), biasing the same bits the
// same way on every chip; adjacent pairing cancels them.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

namespace {

void print_histogram(const char* label, const aropuf::Histogram& h) {
  std::cout << "\n  " << label << " inter-chip HD distribution:\n";
  const auto bars = h.ascii(46);
  for (std::size_t b = 0; b < h.bins(); ++b) {
    if (h.count(b) == 0) continue;
    std::printf("  %5.1f%% | %s (%zu)\n", h.bin_center(b) * 100.0, bars[b].c_str(),
                h.count(b));
  }
}

}  // namespace

int main(int argc, char** argv) {
  aropuf::bench::parse_args(argc, argv);
  using namespace aropuf;
  bench::banner("E3: uniqueness (inter-chip Hamming distance)",
                "Fig. — inter-chip HD histograms; Table — mean HD");

  const PopulationConfig pop = bench::standard_population();
  const auto conv = run_uniqueness(pop, PufConfig::conventional());
  const auto aro = run_uniqueness(pop, PufConfig::aro());

  Table table("inter-chip HD over all chip pairs");
  table.set_header({"design", "mean HD %", "std %", "min %", "max %", "pairs"});
  for (const auto* r : {&conv, &aro}) {
    table.add_row({r->label, Table::num(r->uniqueness.mean_percent(), 2),
                   Table::num(r->uniqueness.stats.stddev() * 100.0, 2),
                   Table::num(r->uniqueness.stats.min() * 100.0, 2),
                   Table::num(r->uniqueness.stats.max() * 100.0, 2),
                   std::to_string(r->uniqueness.stats.count())});
  }
  table.print(std::cout);

  print_histogram("conventional", conv.uniqueness.histogram);
  print_histogram("ARO", aro.uniqueness.histogram);

  std::cout << "\npaper:    conventional ~45%   ARO 49.67%\n";
  std::cout << "measured: conventional " << Table::num(conv.uniqueness.mean_percent(), 2)
            << "%   ARO " << Table::num(aro.uniqueness.mean_percent(), 2) << "%\n";
  return bench::finish("e3_uniqueness");
}
