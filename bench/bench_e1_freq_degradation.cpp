// E1 — RO frequency degradation vs time (paper Fig. "frequency shift").
//
// Conventional RO-PUF oscillators run (and age) continuously; ARO-PUF
// oscillators are gated and age only during evaluations.  The paper's figure
// shows conventional frequency sagging by several percent over 10 years
// while the ARO stays nearly flat.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "sim/csv.hpp"

int main(int argc, char** argv) {
  aropuf::bench::parse_args(argc, argv);
  using namespace aropuf;
  bench::banner("E1: RO frequency degradation vs time",
                "Fig. — mean RO frequency shift over 10 years of use");

  const PopulationConfig pop = bench::standard_population();
  const double checkpoints[] = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0};

  const auto conv =
      run_frequency_degradation(pop, PufConfig::conventional(), checkpoints);
  const auto aro = run_frequency_degradation(pop, PufConfig::aro(), checkpoints);

  Table table("mean frequency degradation (% of fresh frequency)");
  table.set_header({"years", "conventional RO-PUF", "ARO-PUF"});
  auto csv = CsvWriter::for_bench("e1_freq_degradation");
  if (csv.has_value()) csv->write_row({"years", "conv_shift_pct", "aro_shift_pct"});
  for (std::size_t i = 0; i < conv.years.size(); ++i) {
    table.add_row({Table::num(conv.years[i], 0), Table::num(conv.mean_freq_shift_percent[i], 2),
                   Table::num(aro.mean_freq_shift_percent[i], 3)});
    if (csv.has_value()) {
      csv->write_row({Table::num(conv.years[i], 1),
                      Table::num(conv.mean_freq_shift_percent[i], 4),
                      Table::num(aro.mean_freq_shift_percent[i], 4)});
    }
  }
  table.print(std::cout);

  std::cout << "\nshape check: conventional degrades ~" << Table::num(conv.mean_freq_shift_percent.back(), 1)
            << "% by year 10; ARO stays below " << Table::num(aro.mean_freq_shift_percent.back(), 2)
            << "% (enable gating removes nearly all stress time)\n";
  return bench::finish("e1_freq_degradation", &csv);
}
