// E14 (extension) — automotive mission profile.
//
// Real devices don't sit at one temperature: this bench ages both designs
// through a 2 h/day 85 C engine-on + 22 h/day 15 C parked cycle (exact
// multi-temperature accumulation via nominal-equivalent stress), for a
// 15-year automotive lifetime.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "sim/csv.hpp"

int main(int argc, char** argv) {
  aropuf::bench::parse_args(argc, argv);
  using namespace aropuf;
  bench::banner("E14: automotive mission profile (15 years)",
                "extension — mixed-temperature lifetime");

  PopulationConfig pop = bench::standard_population();
  pop.chips = 25;
  const double checkpoints[] = {1.0, 3.0, 5.0, 10.0, 15.0};

  const auto conv = run_mission(pop, PufConfig::conventional(),
                                MissionProfile::automotive(false), checkpoints);
  const auto aro =
      run_mission(pop, PufConfig::aro(), MissionProfile::automotive(true), checkpoints);

  Table table("bits flipped on the automotive mission (%)");
  table.set_header({"years", "conventional mean", "conventional worst", "ARO mean",
                    "ARO worst"});
  auto csv = CsvWriter::for_bench("e14_mission");
  if (csv.has_value()) {
    csv->write_row({"years", "conv_mean", "conv_worst", "aro_mean", "aro_worst"});
  }
  for (std::size_t i = 0; i < conv.years.size(); ++i) {
    table.add_row({Table::num(conv.years[i], 0), Table::num(conv.mean_flip_percent[i], 2),
                   Table::num(conv.max_flip_percent[i], 2), Table::num(aro.mean_flip_percent[i], 2),
                   Table::num(aro.max_flip_percent[i], 2)});
    if (csv.has_value()) {
      csv->write_row({Table::num(conv.years[i], 1), Table::num(conv.mean_flip_percent[i], 4),
                      Table::num(conv.max_flip_percent[i], 4),
                      Table::num(aro.mean_flip_percent[i], 4),
                      Table::num(aro.max_flip_percent[i], 4)});
    }
  }
  table.print(std::cout);

  std::cout << "\nshape check: two hot engine-on hours per day outweigh the 22 cool\n"
               "parked hours (Arrhenius), leaving the always-on conventional design\n"
               "about as damaged as the constant-55C E2 regime — a third of its bits by\n"
               "year 15 — while the gated ARO stays in single digits for the whole\n"
               "automotive lifetime.\n";
  return bench::finish("e14_mission", &csv);
}
